"""Physical operators for minidb — the Volcano iterator layer.

Every operator exposes ``open(ctx, parent)/next()/close()`` and is built
once per statement by the optimizer (:mod:`repro.minidb.optimizer`), then
cloned per execution so cached plans can run concurrently.  Two item
shapes flow through a plan:

* **scope-level** operators (scans, joins, filters) yield
  :class:`~repro.minidb.expressions.Scope` objects binding table aliases
  to rows, and
* **row-level** operators (projection, aggregation, distinct, union,
  sort, top-N, limit) yield ``(row, context)`` pairs where ``context`` is
  ``(scope, aggregate_values)`` when ORDER BY may need to re-evaluate
  source expressions, or ``None`` after a UNION erased it.

Per-operator actuals (``actual_rows``/``loops``/``seconds``) hang off the
operator instances themselves; ``EXPLAIN ANALYZE`` renders them with
:func:`render_plan`.  Engine metrics (rows scanned, access-path counters,
hash-join build/probe activity) are flushed from the operator bodies.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, Optional

from ..obs.clock import now as _now
from ..obs.metrics import metrics as _M
from . import ast_nodes as ast
from . import vector as _vector
from .errors import ProgrammingError
from .expressions import AggregateAccumulator, Evaluator, Scope
from .planner import (
    FullScan,
    HashJoin as HashJoinPath,
    IndexEquality,
    IndexRange as IndexRangePath,
    InProbe as InProbePath,
)
from .sqltypes import sort_key
from .storage import SEGMENT_ROWS
from .vector import ColumnBatch

# Engine metrics (see docs/observability.md).  Instruments no-op while the
# registry is disabled; hot loops aggregate into locals and flush once per
# operator open.
_ROWS_SCANNED = _M.counter("minidb.rows.scanned", unit="rows")
_FULL_SCANS = _M.counter("minidb.access.full_scans")
_INDEX_LOOKUPS = _M.counter("minidb.access.index_lookups")
_HJ_BUILDS = _M.counter("minidb.hash_join.builds")
_HJ_BUILD_ROWS = _M.counter("minidb.hash_join.build_rows", unit="rows")
_HJ_PROBES = _M.counter("minidb.hash_join.probes")
_VEC_BATCHES = _M.counter("minidb.vector.batches")
_VEC_ROWS = _M.counter("minidb.vector.rows", unit="rows")


class ExecStats:
    """Per-statement-execution totals the profiler reads at finalize.

    One instance is shared by every :class:`ExecContext` of a statement
    execution (subquery contexts included).  Scan operators add their
    local counts here at the same once-per-close flush points that feed
    the global registry counters, so the cost is per-open, not per-row,
    and the numbers exist even while the metrics registry is disabled.
    """

    __slots__ = ("rows_scanned",)

    def __init__(self) -> None:
        self.rows_scanned = 0


class ExecContext:
    """Per-execution state shared by every operator in one plan run."""

    __slots__ = (
        "db", "evaluator", "outer", "analyze", "hash_builds", "subquery_rows",
        "stats",
    )

    def __init__(
        self,
        db,
        evaluator: Evaluator,
        outer: Optional[Scope] = None,
        analyze: bool = False,
        hash_builds: Optional[dict] = None,
        subquery_rows: Optional[dict] = None,
        stats: Optional[ExecStats] = None,
    ) -> None:
        self.db = db
        self.evaluator = evaluator
        self.outer = outer if outer is not None else Scope()
        self.analyze = analyze
        # Hash-join build tables, keyed by id(access path): built on the
        # first probe of a statement execution, reused for every later one
        # (including re-runs of correlated subqueries).
        self.hash_builds = hash_builds if hash_builds is not None else {}
        # FROM-subquery materialisations, keyed by id(operator): FROM
        # subqueries are uncorrelated by construction, so one execution
        # computes them at most once even under a nested-loop reopen.
        self.subquery_rows = subquery_rows if subquery_rows is not None else {}
        self.stats = stats if stats is not None else ExecStats()

    def child(self, outer: Scope) -> "ExecContext":
        """A context for a sub-plan sharing this execution's caches."""
        return ExecContext(
            self.db,
            self.evaluator,
            outer=outer,
            analyze=self.analyze,
            hash_builds=self.hash_builds,
            subquery_rows=self.subquery_rows,
            stats=self.stats,
        )


class Operator:
    """Base physical operator: ``open()/next()/close()`` plus plan shape.

    Two pull protocols coexist.  The classic Volcano interface
    (``open/next/close``) moves one item per call; the batch interface
    (``open_batches/next_batch/close``) moves one *batch* per call — a
    :class:`~repro.minidb.vector.ColumnBatch` of column vectors below the
    projection boundary, a plain list of row tuples above it.  Operators
    whose native implementation is batch-at-a-time set ``BATCHED`` and
    override ``_produce_batches``; everything else inherits a generic
    chunker so any plan can be drained batchwise.
    """

    #: True when ``_produce_batches`` is the native (vectorized) path.
    BATCHED = False

    def __init__(self) -> None:
        self.actual_rows = 0
        self.actual_batches = 0
        self.loops = 0
        self.seconds = 0.0
        self.est_rows: Optional[int] = None
        self._gen: Optional[Iterator] = None
        self._bgen: Optional[Iterator] = None

    # -- plan shape ---------------------------------------------------------

    def children(self) -> tuple:
        return ()

    def clone(self) -> "Operator":
        raise NotImplementedError  # pragma: no cover

    def describe(self) -> str:
        raise NotImplementedError  # pragma: no cover

    def _copy_plan_attrs(self, fresh: "Operator") -> "Operator":
        fresh.est_rows = self.est_rows
        return fresh

    # -- volcano interface --------------------------------------------------

    def open(self, ctx: ExecContext, parent: Optional[Scope] = None) -> "Operator":
        self.loops += 1
        gen = self._produce(ctx, parent)
        if ctx.analyze:
            gen = self._metered(gen)
        self._gen = gen
        return self

    def next(self):
        gen = self._gen
        if gen is None:
            return None
        return next(gen, None)

    def close(self) -> None:
        gen, self._gen = self._gen, None
        if gen is not None:
            gen.close()
        bgen, self._bgen = self._bgen, None
        if bgen is not None:
            bgen.close()

    def rows(self, ctx: ExecContext, parent: Optional[Scope] = None) -> Iterator:
        """open/next/close as one generator — the internal pull loop."""
        self.open(ctx, parent)
        try:
            while True:
                item = self.next()
                if item is None:
                    return
                yield item
        finally:
            self.close()

    def _produce(self, ctx: ExecContext, parent: Optional[Scope]) -> Iterator:
        raise NotImplementedError  # pragma: no cover

    def _metered(self, it: Iterator) -> Iterator:
        t0 = _now()
        for item in it:
            self.seconds += _now() - t0
            self.actual_rows += 1
            yield item
            t0 = _now()
        self.seconds += _now() - t0

    # -- batch interface ------------------------------------------------------

    def open_batches(
        self, ctx: ExecContext, parent: Optional[Scope] = None
    ) -> "Operator":
        self.loops += 1
        bgen = self._produce_batches(ctx, parent)
        if ctx.analyze:
            bgen = self._metered_batches(bgen)
        self._bgen = bgen
        return self

    def next_batch(self):
        bgen = self._bgen
        if bgen is None:
            return None
        return next(bgen, None)

    def batches(self, ctx: ExecContext, parent: Optional[Scope] = None) -> Iterator:
        """open_batches/next_batch/close as one generator."""
        self.open_batches(ctx, parent)
        try:
            while True:
                batch = self.next_batch()
                if batch is None:
                    return
                yield batch
        finally:
            self.close()

    def _produce_batches(self, ctx: ExecContext, parent: Optional[Scope]) -> Iterator:
        """Generic chunker: group this operator's items into lists.

        Vectorized operators override this with a native batch pipeline;
        the fallback exists so *every* operator honours the batch
        protocol (``vector.BATCH_SIZE`` is read per call so tests can
        tune it).
        """
        size = _vector.BATCH_SIZE
        batch: list = []
        for item in self._produce(ctx, parent):
            batch.append(item)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch

    def _metered_batches(self, it: Iterator) -> Iterator:
        t0 = _now()
        for batch in it:
            self.seconds += _now() - t0
            self.actual_rows += batch.n if isinstance(batch, ColumnBatch) else len(batch)
            self.actual_batches += 1
            yield batch
            t0 = _now()
        self.seconds += _now() - t0


# ---------------------------------------------------------------------------
# Scope-level operators: scans, joins, filters.


class _ScanBase(Operator):
    """Table access through one planner access path."""

    #: metric bumped once per (re)open; overridden per subclass.
    _access_counter = _FULL_SCANS

    def __init__(self, path) -> None:
        super().__init__()
        self.path = path

    def clone(self) -> "Operator":
        return self._copy_plan_attrs(type(self)(self.path))

    def describe(self) -> str:
        return self.path.describe()

    def _rowids(self, ctx: ExecContext, table, eval_scope: Scope) -> Iterator[int]:
        raise NotImplementedError  # pragma: no cover

    def _produce(self, ctx: ExecContext, parent: Optional[Scope]) -> Iterator[Scope]:
        if _M.enabled:
            self._access_counter.inc()
        path = self.path
        table = ctx.db.table(path.table)
        columns = table.meta.column_names
        binding = path.binding
        base = parent if parent is not None else ctx.outer
        rows = table.rows
        scanned = 0
        try:
            for rowid in self._rowids(ctx, table, base):
                scanned += 1
                row = rows.get(rowid)
                if row is None:
                    continue
                scope = base.child()
                scope.bind(binding, columns, row)
                scope.rowid = rowid
                yield scope
        finally:
            _ROWS_SCANNED.add(scanned)
            ctx.stats.rows_scanned += scanned


class SeqScan(_ScanBase):
    """Full scan over a table's row store."""

    _access_counter = _FULL_SCANS

    def _rowids(self, ctx, table, eval_scope):
        # Snapshot the key list so DML callers may mutate during iteration.
        return iter(list(table.rows.keys()))


class IndexLookup(_ScanBase):
    """Exact-key probe of one index (equality on all index columns)."""

    _access_counter = _INDEX_LOOKUPS

    def _rowids(self, ctx, table, eval_scope):
        ev = ctx.evaluator
        key = tuple(ev.evaluate(e, eval_scope) for e in self.path.key_exprs)
        # Plans cache live Index objects; snapshot reads resolve them to
        # the pinned version's frozen copy (identity on a live database).
        return iter(ctx.db.index_state(self.path.index).lookup(key))


class IndexRange(_ScanBase):
    """Ordered index scan: equality prefix or leading-column bounds."""

    _access_counter = _INDEX_LOOKUPS

    def _rowids(self, ctx, table, eval_scope):
        ev = ctx.evaluator
        path = self.path
        index = ctx.db.index_state(path.index)
        prefix = tuple(ev.evaluate(e, eval_scope) for e in path.prefix_exprs)
        if prefix:
            return index.range_scan(low=prefix, high=prefix)
        low = high = None
        low_inc = high_inc = True
        if path.low is not None:
            op, expr = path.low
            low = (ev.evaluate(expr, eval_scope),)
            low_inc = op == ">="
        if path.high is not None:
            op, expr = path.high
            high = (ev.evaluate(expr, eval_scope),)
            high_inc = op == "<="
        return index.range_scan(low, high, low_inc, high_inc)


class InProbe(_ScanBase):
    """Multi-probe of an index: ``column IN (known values...)``."""

    _access_counter = _INDEX_LOOKUPS

    def _rowids(self, ctx, table, eval_scope):
        ev = ctx.evaluator
        path = self.path
        index = ctx.db.index_state(path.index)
        seen: set[int] = set()
        for item in path.items:
            key = (ev.evaluate(item, eval_scope),)
            for rowid in index.lookup(key):
                if rowid not in seen:
                    seen.add(rowid)
                    yield rowid


class HashJoin(_ScanBase):
    """Equi-join probe with no usable index: hash the build table once per
    execution (keys normalised through ``sort_key`` so ``1`` matches
    ``1.0``), then every outer row probes the map in O(1).  NULL keys are
    excluded on both sides, matching SQL equi-join semantics."""

    _access_counter = _INDEX_LOOKUPS  # probes counted below at the build

    def _produce(self, ctx, parent):  # skip the per-open access counter
        path = self.path
        table = ctx.db.table(path.table)
        columns = table.meta.column_names
        binding = path.binding
        base = parent if parent is not None else ctx.outer
        rows = table.rows
        scanned = 0
        try:
            for rowid in self._rowids(ctx, table, base):
                scanned += 1
                row = rows.get(rowid)
                if row is None:
                    continue
                scope = base.child()
                scope.bind(binding, columns, row)
                scope.rowid = rowid
                yield scope
        finally:
            _ROWS_SCANNED.add(scanned)
            ctx.stats.rows_scanned += scanned

    def _rowids(self, ctx, table, eval_scope):
        path = self.path
        build = ctx.hash_builds.get(id(path))
        if build is None:
            build = {}
            for rowid, row in table.rows.items():
                key = tuple(row[p] for p in path.build_positions)
                if any(v is None for v in key):
                    continue  # NULL never matches an equi-join key
                hkey = tuple(sort_key(v) for v in key)
                build.setdefault(hkey, []).append(rowid)
            ctx.hash_builds[id(path)] = build
            if _M.enabled:
                _HJ_BUILDS.inc()
                _HJ_BUILD_ROWS.add(len(table.rows))
        _HJ_PROBES.inc()
        ev = ctx.evaluator
        probe = tuple(ev.evaluate(e, eval_scope) for e in path.probe_exprs)
        if any(v is None for v in probe):
            return
        yield from build.get(tuple(sort_key(v) for v in probe), ())


def scan_for_path(path) -> _ScanBase:
    """The physical scan operator interpreting one planner access path."""
    if isinstance(path, FullScan):
        return SeqScan(path)
    if isinstance(path, IndexEquality):
        return IndexLookup(path)
    if isinstance(path, IndexRangePath):
        return IndexRange(path)
    if isinstance(path, InProbePath):
        return InProbe(path)
    if isinstance(path, HashJoinPath):
        return HashJoin(path)
    raise ProgrammingError(f"unknown access path {path!r}")  # pragma: no cover


class ConstantRow(Operator):
    """Source of a FROM-less SELECT: one empty scope."""

    def clone(self):
        return self._copy_plan_attrs(ConstantRow())

    def describe(self) -> str:
        return "CONSTANT ROW"

    def _produce(self, ctx, parent):
        base = parent if parent is not None else ctx.outer
        yield base.child()


class SubqueryScan(Operator):
    """FROM-clause subquery: materialise once per execution, rebind per
    parent row.  FROM subqueries are uncorrelated (they resolve against a
    fresh scope), so the result set is cached in the execution context."""

    def __init__(self, plan: Operator, alias: str, names: list[str]) -> None:
        super().__init__()
        self.plan = plan
        self.alias = alias
        self.names = names

    def children(self) -> tuple:
        return (self.plan,)

    def clone(self):
        return self._copy_plan_attrs(
            SubqueryScan(self.plan.clone(), self.alias, self.names)
        )

    def describe(self) -> str:
        return f"SUBQUERY AS {self.alias}"

    def _produce(self, ctx, parent):
        rows = ctx.subquery_rows.get(id(self))
        if rows is None:
            sub_ctx = ctx.child(Scope())
            rows = [row for row, _c in self.plan.rows(sub_ctx)]
            ctx.subquery_rows[id(self)] = rows
        base = parent if parent is not None else ctx.outer
        for row in rows:
            scope = base.child()
            scope.bind(self.alias, self.names, row)
            yield scope


class NestedLoopJoin(Operator):
    """Left-deep nested loop: reopen the inner side once per outer row.

    The inner side usually carries a pushed-down access path (index probe,
    hash-probe, ...), so 'nested loop' is the control structure, not the
    cost.  The join condition is re-evaluated in full on the merged scope
    — access paths only pre-filter.  LEFT joins null-extend the right-side
    schemas when no inner row matched."""

    def __init__(self, left, right, kind: str, condition, null_schemas) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition
        self.null_schemas = null_schemas  # [(binding, columns)] of right side

    def children(self) -> tuple:
        return (self.left, self.right)

    def clone(self):
        return self._copy_plan_attrs(
            NestedLoopJoin(
                self.left.clone(),
                self.right.clone(),
                self.kind,
                self.condition,
                self.null_schemas,
            )
        )

    def describe(self) -> str:
        strategy = " [hash probe]" if isinstance(self.right, HashJoin) else ""
        return f"NESTED LOOP ({self.kind}){strategy}"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        cond = self.condition
        kind = self.kind
        for left_scope in self.left.rows(ctx, parent):
            matched = False
            for right_scope in self.right.rows(ctx, left_scope):
                if cond is None or ev.is_true(cond, right_scope):
                    matched = True
                    yield right_scope
            if kind == "LEFT" and not matched:
                scope = left_scope.child()
                for binding, columns in self.null_schemas:
                    scope.bind(binding, columns, tuple([None] * len(columns)))
                yield scope


class FilterOp(Operator):
    """Residual predicate: WHERE re-evaluated in full above the source."""

    def __init__(self, condition, child) -> None:
        super().__init__()
        self.condition = condition
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(FilterOp(self.condition, self.child.clone()))

    def describe(self) -> str:
        return "FILTER"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        cond = self.condition
        for scope in self.child.rows(ctx, parent):
            if ev.is_true(cond, scope):
                yield scope


# ---------------------------------------------------------------------------
# Row-level operators: projection, aggregation, shaping.


def project_row(
    ev: Evaluator, cols, scope: Scope, aggregates: Optional[dict] = None
) -> tuple:
    """Evaluate one select list against *scope*.

    ``cols`` is the plan-time projection: ``("expr", expr)`` entries or
    expanded ``("star", binding, columns)`` entries.
    """
    old_agg = ev.aggregates
    if aggregates is not None:
        ev.aggregates = aggregates
    try:
        out: list[Any] = []
        for entry in cols:
            if entry[0] == "expr":
                out.append(ev.evaluate(entry[1], scope))
            else:
                _kind, binding, columns = entry
                for col in columns:
                    out.append(scope.resolve(binding, col))
        return tuple(out)
    finally:
        ev.aggregates = old_agg


class ProjectOp(Operator):
    """Evaluate the select list; yields ``(row, (scope, None))``."""

    def __init__(self, cols, child) -> None:
        super().__init__()
        self.cols = cols
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(ProjectOp(self.cols, self.child.clone()))

    def describe(self) -> str:
        return "PROJECT"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        cols = self.cols
        for scope in self.child.rows(ctx, parent):
            yield project_row(ev, cols, scope), (scope, None)


class HashAggregate(Operator):
    """Group rows by GROUP BY keys and fold aggregate accumulators.

    Groups surface in first-seen order; an aggregate over an empty
    ungrouped input still yields one row (with NULL-bound source columns
    so stray column references resolve to NULL, as SQL requires)."""

    def __init__(self, select: ast.Select, calls, cols, schemas, child) -> None:
        super().__init__()
        self.select = select
        self.calls = calls  # aggregate FuncCall nodes (identity-keyed)
        self.cols = cols  # plan-time projection entries
        self.schemas = schemas  # [(binding, columns)] for the empty case
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(
            HashAggregate(
                self.select, self.calls, self.cols, self.schemas, self.child.clone()
            )
        )

    def describe(self) -> str:
        return "AGGREGATE"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        stmt = self.select
        calls = self.calls
        groups: dict[tuple, tuple] = {}
        order: list[tuple] = []
        for scope in self.child.rows(ctx, parent):
            if stmt.group_by:
                key = tuple(sort_key(ev.evaluate(e, scope)) for e in stmt.group_by)
            else:
                key = ()
            g = groups.get(key)
            if g is None:
                g = (scope, {id(c): AggregateAccumulator(c) for c in calls})
                groups[key] = g
                order.append(key)
            accs = g[1]
            for call in calls:
                acc = accs[id(call)]
                if call.star:
                    acc.add(None)
                else:
                    if len(call.args) != 1:
                        raise ProgrammingError(
                            f"aggregate {call.name}() takes exactly one argument"
                        )
                    acc.add(ev.evaluate(call.args[0], scope))
        if not groups and not stmt.group_by:
            # Aggregate over an empty input still yields one row.
            empty_scope = (parent if parent is not None else ctx.outer).child()
            for binding, columns in self.schemas:
                empty_scope.bind(binding, columns, tuple([None] * len(columns)))
            groups[()] = (
                empty_scope,
                {id(c): AggregateAccumulator(c) for c in calls},
            )
            order.append(())
        for key in order:
            scope, accs = groups[key]
            agg_values = {i: acc.result() for i, acc in accs.items()}
            if stmt.having is not None:
                old = ev.aggregates
                ev.aggregates = agg_values
                try:
                    ok = ev.is_true(stmt.having, scope)
                finally:
                    ev.aggregates = old
                if not ok:
                    continue
            yield project_row(ev, self.cols, scope, agg_values), (scope, agg_values)


class DistinctOp(Operator):
    """SELECT DISTINCT: first-seen wins, keyed through ``sort_key``."""

    def __init__(self, child) -> None:
        super().__init__()
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(DistinctOp(self.child.clone()))

    def describe(self) -> str:
        return "DISTINCT"

    def _produce(self, ctx, parent):
        seen: set = set()
        for item in self.child.rows(ctx, parent):
            key = tuple(sort_key(v) for v in item[0])
            if key in seen:
                continue
            seen.add(key)
            yield item


class UnionOp(Operator):
    """Concatenate compound SELECT branches.

    ``dedup_until`` is the index of the last branch covered by a ``UNION``
    (as opposed to ``UNION ALL``); branches up to it stream through a
    shared first-seen filter, later ``UNION ALL`` branches pass raw.  Row
    contexts are erased — ORDER BY over a compound must use output names
    or positions (checked in :class:`SortOp`)."""

    def __init__(self, inputs, dedup_until: int) -> None:
        super().__init__()
        self.inputs = inputs
        self.dedup_until = dedup_until

    def children(self) -> tuple:
        return tuple(self.inputs)

    def clone(self):
        return self._copy_plan_attrs(
            UnionOp([op.clone() for op in self.inputs], self.dedup_until)
        )

    def describe(self) -> str:
        return "UNION" if self.dedup_until >= 0 else "UNION ALL"

    def _produce(self, ctx, parent):
        seen: Optional[set] = set() if self.dedup_until >= 0 else None
        for i, branch in enumerate(self.inputs):
            dedup = seen is not None and i <= self.dedup_until
            for row, _context in branch.rows(ctx, parent):
                if dedup:
                    key = tuple(sort_key(v) for v in row)
                    if key in seen:
                        continue
                    seen.add(key)
                yield row, None


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def order_value(ev: Evaluator, expr: ast.Expr, row: tuple, names, context) -> Any:
    """The value one ORDER BY term sorts a result row on.

    Output positions and output-name references read straight from the
    row; anything else re-evaluates against the row's source context
    (scope + aggregate values), which a compound SELECT no longer has.
    """
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int) and not isinstance(
        expr.value, bool
    ):
        pos = expr.value - 1
        if pos < 0 or pos >= len(row):
            raise ProgrammingError(f"ORDER BY position {expr.value} out of range")
        return row[pos]
    if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name.lower() in names:
        return row[names.index(expr.name.lower())]
    if context is None:
        raise ProgrammingError(
            "ORDER BY in compound SELECT must use output column names or positions"
        )
    scope, aggregates = context
    old = ev.aggregates
    if aggregates is not None:
        ev.aggregates = aggregates
    try:
        return ev.evaluate(expr, scope)
    finally:
        ev.aggregates = old


class _OrderedOp(Operator):
    """Shared sort-key machinery for :class:`SortOp` and :class:`TopN`."""

    def __init__(self, order_by, names, child) -> None:
        super().__init__()
        self.order_by = order_by
        self.names = [n.lower() for n in names]
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def _key_fn(self, ctx):
        ev = ctx.evaluator
        names = self.names
        order_by = self.order_by

        def key_for(item):
            row, context = item
            parts = []
            for oi in order_by:
                k = sort_key(order_value(ev, oi.expr, row, names, context))
                parts.append(_Reversed(k) if oi.descending else k)
            return tuple(parts)

        return key_for


class SortOp(_OrderedOp):
    """Full materialising sort (stable, so equal keys keep source order)."""

    def clone(self):
        return self._copy_plan_attrs(SortOp(self.order_by, self.names, self.child.clone()))

    def describe(self) -> str:
        return "ORDER BY"

    def _produce(self, ctx, parent):
        items = list(self.child.rows(ctx, parent))
        items.sort(key=self._key_fn(ctx))
        yield from items


class TopN(_OrderedOp):
    """Fused ORDER BY + LIMIT: keep the k smallest in a bounded heap.

    ``heapq.nsmallest`` is documented equivalent to a stable
    ``sorted(...)[:k]``, so the fusion is byte-identical to SortOp +
    LimitOp while holding only ``offset + limit`` rows.  A NULL or
    negative LIMIT degrades to the full sort (matching LimitOp)."""

    def __init__(self, order_by, names, limit, offset, child) -> None:
        super().__init__(order_by, names, child)
        self.limit = limit
        self.offset = offset

    def clone(self):
        return self._copy_plan_attrs(
            TopN(self.order_by, self.names, self.limit, self.offset, self.child.clone())
        )

    def describe(self) -> str:
        return "TOP-N (ORDER BY + LIMIT)"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        offset = 0
        if self.offset is not None:
            offset = max(0, int(ev.evaluate(self.offset, ctx.outer) or 0))
        limit = ev.evaluate(self.limit, ctx.outer)
        key_for = self._key_fn(ctx)
        if limit is None or int(limit) < 0:
            items = list(self.child.rows(ctx, parent))
            items.sort(key=key_for)
            yield from items[offset:]
            return
        k = offset + int(limit)
        if k <= 0:
            # Drain nothing: LIMIT 0 returns no rows regardless of input.
            return
        top = heapq.nsmallest(k, self.child.rows(ctx, parent), key=key_for)
        yield from top[offset:]


class LimitOp(Operator):
    """LIMIT/OFFSET: skip, then stop pulling once the quota is reached."""

    def __init__(self, limit, offset, child) -> None:
        super().__init__()
        self.limit = limit
        self.offset = offset
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(LimitOp(self.limit, self.offset, self.child.clone()))

    def describe(self) -> str:
        return "LIMIT"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        offset = 0
        if self.offset is not None:
            offset = max(0, int(ev.evaluate(self.offset, ctx.outer) or 0))
        n: Optional[int] = None
        if self.limit is not None:
            limit = ev.evaluate(self.limit, ctx.outer)
            if limit is not None and int(limit) >= 0:
                n = int(limit)
        if n == 0:
            return
        emitted = 0
        skipped = 0
        for item in self.child.rows(ctx, parent):
            if skipped < offset:
                skipped += 1
                continue
            yield item
            emitted += 1
            if n is not None and emitted >= n:
                return


# ---------------------------------------------------------------------------
# Vectorized operators: batch-at-a-time pipeline over columnar segments.
#
# VecScan and VecFilter move ColumnBatch objects (column vectors); the
# operators above the projection boundary (VecProject, VecSort, VecTopN,
# VecDistinct, VecLimit) move lists of plain row tuples.  VecAggregate is
# the bridge back into the row engine: it consumes ColumnBatches but
# exposes the classic row interface so the ORDER BY/LIMIT tail and HAVING
# logic are shared verbatim with HashAggregate.


class VecScan(Operator):
    """Batch scan over a table's columnar segment store.

    ``slots`` maps batch slot -> table column position (assigned by the
    :class:`~repro.minidb.vector.KernelCompiler`); only those columns are
    decoded.  The segment snapshot is keyed to ``Table.data_version`` —
    if the table mutates mid-scan the remaining rowids are served through
    live row lookups, matching SeqScan's snapshot-the-keys semantics.
    """

    BATCHED = True

    def __init__(self, path, slots) -> None:
        super().__init__()
        self.path = path
        self.slots = slots

    def clone(self) -> "Operator":
        return self._copy_plan_attrs(VecScan(self.path, self.slots))

    def describe(self) -> str:
        return self.path.describe() + " [batched]"

    def _produce(self, ctx, parent):
        raise ProgrammingError(
            "VecScan is batch-only; use the batch interface"
        )  # pragma: no cover

    def _produce_batches(self, ctx, parent):
        if _M.enabled:
            _FULL_SCANS.inc()
        table = ctx.db.table(self.path.table)
        store = table.column_store()
        slots = self.slots
        nslots = len(slots)
        scanned = 0
        nbatches = 0
        row_index = 0
        try:
            while row_index < store.nrows:
                size = _vector.BATCH_SIZE
                if table.data_version == store.version:
                    si, a = divmod(row_index, SEGMENT_ROWS)
                    seg = store.segment(si)
                    b = min(a + size, seg.n)
                    cols = []
                    kinds = []
                    for pos in slots:
                        vals, kind = seg.slice(pos, a, b)
                        cols.append(vals)
                        kinds.append(kind)
                    n = b - a
                    batch = ColumnBatch(n, cols, kinds, seg.rowids[a:b])
                    row_index += n
                else:
                    # Mid-scan mutation: finish through live row lookups.
                    items = store._items
                    rows_map = table.rows
                    picked: list = []
                    ids: list = []
                    while row_index < store.nrows and len(picked) < size:
                        rid = items[row_index][0]
                        row_index += 1
                        row = rows_map.get(rid)
                        if row is None:
                            continue
                        picked.append(row)
                        ids.append(rid)
                    if not picked:
                        continue
                    n = len(picked)
                    cols = [[row[pos] for row in picked] for pos in slots]
                    batch = ColumnBatch(n, cols, ["o"] * nslots, ids)
                scanned += n
                nbatches += 1
                yield batch
        finally:
            _ROWS_SCANNED.add(scanned)
            ctx.stats.rows_scanned += scanned
            if _M.enabled:
                _VEC_BATCHES.add(nbatches)
                _VEC_ROWS.add(scanned)


class VecFilter(Operator):
    """Predicate over whole batches: one kernel call computes the mask."""

    BATCHED = True

    def __init__(self, condition, kernel, child) -> None:
        super().__init__()
        self.condition = condition
        self.kernel = kernel
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(
            VecFilter(self.condition, self.kernel, self.child.clone())
        )

    def describe(self) -> str:
        return "FILTER [vectorized]"

    def _produce(self, ctx, parent):
        raise ProgrammingError(
            "VecFilter is batch-only; use the batch interface"
        )  # pragma: no cover

    def _produce_batches(self, ctx, parent):
        ev = ctx.evaluator
        kfn = self.kernel.fn
        for b in self.child.batches(ctx, parent):
            mask = kfn(b, ev)
            sel = [i for i, v in enumerate(mask) if v is not None and v]
            if not sel:
                continue
            if len(sel) == b.n:
                yield b
                continue
            cols = [[col[i] for i in sel] for col in b.columns]
            rowids = (
                [b.rowids[i] for i in sel] if b.rowids is not None else None
            )
            yield ColumnBatch(len(sel), cols, b.kinds, rowids)


class _VecRowOp(Operator):
    """Base for vectorized operators that move lists of row tuples."""

    BATCHED = True

    def _produce(self, ctx, parent):
        # Row-engine adapter: flatten batches into (row, context) items.
        for batch in self._produce_batches(ctx, parent):
            for row in batch:
                yield row, None


class VecProject(_VecRowOp):
    """Kernel-per-output-column projection: ColumnBatch in, row batch out."""

    def __init__(self, kernels, child) -> None:
        super().__init__()
        self.kernels = kernels
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(VecProject(self.kernels, self.child.clone()))

    def describe(self) -> str:
        return "PROJECT [vectorized]"

    def _produce_batches(self, ctx, parent):
        ev = ctx.evaluator
        kfns = [k.fn for k in self.kernels]
        single = kfns[0] if len(kfns) == 1 else None
        for b in self.child.batches(ctx, parent):
            if single is not None:
                yield [(v,) for v in single(b, ev)]
            else:
                yield list(zip(*[kf(b, ev) for kf in kfns]))


class VecAggregate(Operator):
    """Batchwise grouping: key/argument columns come from kernels, the
    accumulate-and-emit machinery is shared with :class:`HashAggregate`
    (same accumulator semantics, HAVING handling, empty-input row and
    ``(row, (scope, agg_values))`` output contract)."""

    def __init__(
        self, select, calls, cols, schemas, child, key_kernels, arg_kernels,
        binding, columns, row_slots,
    ) -> None:
        super().__init__()
        self.select = select
        self.calls = calls
        self.cols = cols
        self.schemas = schemas
        self.child = child
        self.key_kernels = key_kernels
        self.arg_kernels = arg_kernels  # id(call) -> kernel for non-star calls
        self.binding = binding
        self.columns = columns
        self.row_slots = row_slots  # table column position -> batch slot

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(
            VecAggregate(
                self.select, self.calls, self.cols, self.schemas,
                self.child.clone(), self.key_kernels, self.arg_kernels,
                self.binding, self.columns, self.row_slots,
            )
        )

    def describe(self) -> str:
        return "AGGREGATE [vectorized]"

    def _produce(self, ctx, parent):
        ev = ctx.evaluator
        stmt = self.select
        base = parent if parent is not None else ctx.outer
        binding = self.binding
        columns = self.columns
        row_slots = self.row_slots
        kfns = [k.fn for k in self.key_kernels]
        plans = [
            (id(c), None if c.star else self.arg_kernels[id(c)].fn, c)
            for c in self.calls
        ]
        groups: dict[tuple, tuple] = {}
        order: list[tuple] = []
        for b in self.child.batches(ctx, parent):
            keycols = [kf(b, ev) for kf in kfns]
            argcols = {
                cid: (af(b, ev) if af is not None else None)
                for cid, af, _c in plans
            }
            bcols = b.columns
            rowids = b.rowids
            for i in range(b.n):
                key = tuple(sort_key(kc[i]) for kc in keycols) if keycols else ()
                g = groups.get(key)
                if g is None:
                    scope = base.child()
                    scope.bind(
                        binding, columns, tuple(bcols[s][i] for s in row_slots)
                    )
                    if rowids is not None:
                        scope.rowid = rowids[i]
                    g = (
                        scope,
                        {cid: AggregateAccumulator(c) for cid, _af, c in plans},
                    )
                    groups[key] = g
                    order.append(key)
                accs = g[1]
                for cid, af, c in plans:
                    if af is None:
                        accs[cid].add(None)  # COUNT(*): every row counts
                    else:
                        accs[cid].add(argcols[cid][i])
        if not groups and not stmt.group_by:
            # Aggregate over an empty input still yields one row.
            empty_scope = base.child()
            for sbinding, scolumns in self.schemas:
                empty_scope.bind(sbinding, scolumns, tuple([None] * len(scolumns)))
            groups[()] = (
                empty_scope,
                {cid: AggregateAccumulator(c) for cid, _af, c in plans},
            )
            order.append(())
        for key in order:
            scope, accs = groups[key]
            agg_values = {i: acc.result() for i, acc in accs.items()}
            if stmt.having is not None:
                old = ev.aggregates
                ev.aggregates = agg_values
                try:
                    ok = ev.is_true(stmt.having, scope)
                finally:
                    ev.aggregates = old
                if not ok:
                    continue
            yield project_row(ev, self.cols, scope, agg_values), (scope, agg_values)


def _key0(decorated: tuple) -> tuple:
    return decorated[0]


class _VecOrderedOp(_VecRowOp):
    """Shared projection + sort-key machinery for VecSort and VecTopN.

    ``spec`` entries are ``(kind, payload, descending)``: ``("pos", i)``
    sorts on projected output column *i*; ``("kernel", k)`` computes a
    separate sort column from the source batch.  Both reduce through
    ``sort_key`` (DESC via ``_Reversed``) exactly like the row engine.
    """

    def __init__(self, proj_kernels, spec, child) -> None:
        super().__init__()
        self.proj_kernels = proj_kernels
        self.spec = spec
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def _decorated(self, ctx, parent):
        """Yields ``(key_tuple, row)`` for every source row."""
        ev = ctx.evaluator
        pfns = [k.fn for k in self.proj_kernels]
        spec = self.spec
        for b in self.child.batches(ctx, parent):
            pcols = [pf(b, ev) for pf in pfns]
            if len(pcols) == 1:
                rows = [(v,) for v in pcols[0]]
            else:
                rows = list(zip(*pcols))
            keyparts = []
            for kind, payload, desc in spec:
                vals = pcols[payload] if kind == "pos" else payload.fn(b, ev)
                if desc:
                    keyparts.append([_Reversed(sort_key(v)) for v in vals])
                else:
                    keyparts.append([sort_key(v) for v in vals])
            for i, row in enumerate(rows):
                yield tuple(kp[i] for kp in keyparts), row

    def _emit(self, rows):
        size = _vector.BATCH_SIZE
        for a in range(0, len(rows), size):
            yield rows[a : a + size]


class VecSort(_VecOrderedOp):
    """Full materialising sort over decorated rows (stable, like SortOp)."""

    def clone(self):
        return self._copy_plan_attrs(
            VecSort(self.proj_kernels, self.spec, self.child.clone())
        )

    def describe(self) -> str:
        return "ORDER BY [vectorized]"

    def _produce_batches(self, ctx, parent):
        decorated = list(self._decorated(ctx, parent))
        decorated.sort(key=_key0)
        yield from self._emit([row for _k, row in decorated])


class VecTopN(_VecOrderedOp):
    """Fused ORDER BY + LIMIT over batches, same heap bound as TopN."""

    def __init__(self, proj_kernels, spec, limit, offset, child) -> None:
        super().__init__(proj_kernels, spec, child)
        self.limit = limit
        self.offset = offset

    def clone(self):
        return self._copy_plan_attrs(
            VecTopN(
                self.proj_kernels, self.spec, self.limit, self.offset,
                self.child.clone(),
            )
        )

    def describe(self) -> str:
        return "TOP-N (ORDER BY + LIMIT) [vectorized]"

    def _produce_batches(self, ctx, parent):
        ev = ctx.evaluator
        offset = 0
        if self.offset is not None:
            offset = max(0, int(ev.evaluate(self.offset, ctx.outer) or 0))
        limit = ev.evaluate(self.limit, ctx.outer)
        if limit is None or int(limit) < 0:
            decorated = list(self._decorated(ctx, parent))
            decorated.sort(key=_key0)
            yield from self._emit([row for _k, row in decorated[offset:]])
            return
        k = offset + int(limit)
        if k <= 0:
            return
        top = heapq.nsmallest(k, self._decorated(ctx, parent), key=_key0)
        yield from self._emit([row for _k, row in top[offset:]])


class VecDistinct(_VecRowOp):
    """SELECT DISTINCT over row batches (same sort_key dedup as DistinctOp)."""

    def __init__(self, child) -> None:
        super().__init__()
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(VecDistinct(self.child.clone()))

    def describe(self) -> str:
        return "DISTINCT [vectorized]"

    def _produce_batches(self, ctx, parent):
        seen: set = set()
        add = seen.add
        for batch in self.child.batches(ctx, parent):
            out = []
            for row in batch:
                key = tuple(sort_key(v) for v in row)
                if key not in seen:
                    add(key)
                    out.append(row)
            if out:
                yield out


class VecLimit(_VecRowOp):
    """LIMIT/OFFSET over row batches; stops pulling once the quota fills."""

    def __init__(self, limit, offset, child) -> None:
        super().__init__()
        self.limit = limit
        self.offset = offset
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def clone(self):
        return self._copy_plan_attrs(
            VecLimit(self.limit, self.offset, self.child.clone())
        )

    def describe(self) -> str:
        return "LIMIT [vectorized]"

    def _produce_batches(self, ctx, parent):
        ev = ctx.evaluator
        offset = 0
        if self.offset is not None:
            offset = max(0, int(ev.evaluate(self.offset, ctx.outer) or 0))
        n: Optional[int] = None
        if self.limit is not None:
            limit = ev.evaluate(self.limit, ctx.outer)
            if limit is not None and int(limit) >= 0:
                n = int(limit)
        if n == 0:
            return
        skipped = 0
        emitted = 0
        for batch in self.child.batches(ctx, parent):
            if skipped < offset:
                take = min(len(batch), offset - skipped)
                skipped += take
                batch = batch[take:]
                if not batch:
                    continue
            if n is not None and emitted + len(batch) > n:
                batch = batch[: n - emitted]
            emitted += len(batch)
            if batch:
                yield batch
            if n is not None and emitted >= n:
                return


# ---------------------------------------------------------------------------
# Plan rendering.


def render_plan(root: Operator, analyze: bool = False) -> list[str]:
    """Indented operator-tree text for EXPLAIN / EXPLAIN ANALYZE."""
    lines: list[str] = []

    def walk(op: Operator, depth: int) -> None:
        line = "  " * depth + op.describe()
        if not analyze and op.est_rows is not None:
            line += f"  (~{op.est_rows} rows)"
        if analyze and op.loops:
            batches = f" batches={op.actual_batches}" if op.actual_batches else ""
            line += (
                f" (actual rows={op.actual_rows}{batches} loops={op.loops} "
                f"time={op.seconds * 1000.0:.3f} ms)"
            )
        lines.append(line)
        for child in op.children():
            walk(child, depth + 1)

    walk(root, 0)
    return lines


def plan_snapshot(root: Operator) -> list[dict]:
    """The operator tree as plain dicts, one node per operator (pre-order).

    This is the structured sibling of :func:`render_plan`, consumed by the
    statement profiler's plan flight recorder: each node carries the
    planner's estimate (``est_rows``) next to the metered actuals
    (``rows``/``batches``/``loops``/``seconds``), so estimate-vs-actual
    drift can be computed without re-executing or re-parsing EXPLAIN text.
    """
    nodes: list[dict] = []

    def walk(op: Operator, depth: int) -> None:
        nodes.append(
            {
                "depth": depth,
                "op": type(op).__name__,
                "describe": op.describe(),
                "est_rows": op.est_rows,
                "rows": op.actual_rows,
                "batches": op.actual_batches,
                "loops": op.loops,
                "seconds": op.seconds,
            }
        )
        for child in op.children():
            walk(child, depth + 1)

    walk(root, 0)
    return nodes
