"""DB-API 2.0 Connection and Cursor for minidb.

This mirrors the interface PerfTrack used through cx_Oracle and pyGreSQL:
``connect() -> Connection``, ``Connection.cursor() -> Cursor``,
``Cursor.execute(sql, params)`` with ``?`` (qmark) or ``%s`` (format)
placeholders, ``fetchone/fetchmany/fetchall``, ``description``,
``rowcount`` and ``lastrowid``.

Transaction semantics follow PEP 249: an implicit transaction opens on the
first data-modifying statement and is closed by ``commit()``/``rollback()``.
DDL statements commit implicitly (before and after), like Oracle.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Iterable, Iterator, Optional, Sequence

from ..obs.clock import now as _now
from ..obs.metrics import metrics as _M
from ..obs.profiler import profiler as _profiler
from ..obs.tracing import trace as _trace
from . import ast_nodes as ast
from . import optimizer
from .analyzer import Analyzer, Diagnostic
from .errors import InterfaceError, SemanticError, SqlSyntaxError
from .executor import Executor, Result
from .operators import plan_snapshot
from .parser import fingerprint as _fingerprint, parse
from .storage import Database
from .wal import Journal, load_snapshot

_DDL_NODES = (
    ast.CreateTable,
    ast.DropTable,
    ast.CreateIndex,
    ast.DropIndex,
)
_DML_NODES = (ast.Insert, ast.Update, ast.Delete)

# Connection-layer metrics (see docs/observability.md); no-ops while the
# process-wide registry is disabled.
_STATEMENTS = _M.counter("minidb.statements")
_STMT_SECONDS = _M.histogram("minidb.statement_seconds")
_CACHE_HITS = _M.counter("minidb.statement_cache.hits")
_CACHE_MISSES = _M.counter("minidb.statement_cache.misses")
_MEMO_HITS = _M.counter("minidb.analyzer.memo_hits")
_ANALYZE_RUNS = _M.counter("minidb.analyzer.runs")
_BATCHES = _M.counter("minidb.executemany_batches")
_PLAN_HITS = _M.counter("minidb.plan_cache.hits")
_PLAN_MISSES = _M.counter("minidb.plan_cache.misses")

#: Parsed-statement cache capacity per connection.  Eviction is LRU so a
#: burst of one-off statements cannot dump the hot loader statements.
STATEMENT_CACHE_SIZE = 512


class _CachedStatement:
    """A parsed statement plus its memoized semantic analysis and plan.

    ``version`` is the catalog generation the statement was last analyzed
    against; a DDL statement bumps it, forcing cached statements through
    the analyzer once more before their next execution.  SELECTs also
    cache their lowered physical plan: ``plan_version`` is the catalog
    generation the plan was built against (so CREATE/DROP INDEX — which
    bumps the generation — invalidates the plan, not just the analysis),
    and ``plan_stats`` fingerprints the size of every referenced table so
    a table growing past an optimizer threshold re-plans too.
    """

    __slots__ = (
        "stmt", "version", "required_params", "plan", "plan_version",
        "plan_stats", "fingerprint",
    )

    def __init__(self, stmt) -> None:
        self.stmt = stmt
        self.version = -1
        self.required_params = 0
        self.plan: Optional[optimizer.PhysicalPlan] = None
        self.plan_version = -1
        self.plan_stats: Optional[tuple] = None
        # Normalized statement text for the profiler, computed on first
        # profiled execution and cached with the parse.
        self.fingerprint: Optional[str] = None


class Connection:
    """An open minidb database handle."""

    def __init__(self, database: str = ":memory:") -> None:
        self.db = Database()
        self.path: Optional[str] = None
        self._closed = False
        self._statement_cache: OrderedDict[str, Any] = OrderedDict()
        if database != ":memory:":
            self.path = os.fspath(database)
            if os.path.exists(self.path):
                load_snapshot(self.db, self.path)
            journal = Journal(self.db, self.path)
            journal.replay()
            self.db.journal = journal

    # -- PEP 249 interface ---------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        self._check_open()
        self.db.commit()

    def rollback(self) -> None:
        self._check_open()
        self.db.rollback()

    def close(self) -> None:
        if self._closed:
            return
        self.db.rollback()
        if self.db.journal is not None:
            self.db.journal.checkpoint()
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    # -- convenience ----------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        cur = self.cursor()
        cur.execute(sql, params)
        return cur

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        cur = self.cursor()
        cur.executemany(sql, seq_of_params)
        return cur

    def executescript(self, script: str) -> None:
        """Run multiple ``;``-separated statements (no parameters)."""
        for stmt_sql in _split_statements(script):
            self.execute(stmt_sql)

    def checkpoint(self) -> None:
        """Fold the WAL into the snapshot (no-op for :memory: databases)."""
        self._check_open()
        if self.db.journal is not None:
            self.db.commit()
            self.db.journal.checkpoint()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    # -- internals -----------------------------------------------------------------------

    def _parse_cached(self, sql: str) -> _CachedStatement:
        entry = self._statement_cache.get(sql)
        if entry is None:
            _CACHE_MISSES.inc()
            with _trace.span("parse", cat="minidb"):
                entry = _CachedStatement(parse(sql))
            while len(self._statement_cache) >= STATEMENT_CACHE_SIZE:
                self._statement_cache.popitem(last=False)
            self._statement_cache[sql] = entry
        else:
            _CACHE_HITS.inc()
            self._statement_cache.move_to_end(sql)
        return entry

    def _ensure_analyzed(
        self, entry: _CachedStatement, params: Optional[Sequence[Any]]
    ) -> None:
        """Fail fast on semantic errors before any execution side effects.

        The analysis itself is memoized per cached statement and catalog
        generation; only the (cheap) placeholder-arity check runs per call.
        """
        if isinstance(entry.stmt, ast.Check):
            return  # CHECK reports diagnostics instead of failing
        catalog = self.db.catalog
        if entry.version != catalog.version:
            _ANALYZE_RUNS.inc()
            with _trace.span("analyze", cat="minidb"):
                analysis = Analyzer(catalog).analyze(entry.stmt)
            analysis.raise_first_error()
            entry.required_params = analysis.required_params
            entry.version = catalog.version
        else:
            _MEMO_HITS.inc()
        if params is not None and entry.required_params > len(params):
            raise SemanticError(
                f"statement requires at least {entry.required_params} parameters, "
                f"{len(params)} supplied",
                code="SQL010",
            )

    def check(self, sql: str) -> "list[Diagnostic]":
        """Statically analyze *sql* without executing it.

        Returns the full list of analyzer diagnostics (errors, warnings and
        an ``info`` entry for required parameters); an unparseable statement
        yields a single ``SQL000`` error diagnostic.
        """
        self._check_open()
        try:
            entry = self._parse_cached(sql)
        except SqlSyntaxError as exc:
            return [Diagnostic("error", "SQL000", str(exc))]
        except SemanticError as exc:
            # e.g. bare EXPLAIN ANALYZE, rejected at parse with a hint
            return [Diagnostic("error", exc.code, str(exc), exc.suggestion)]
        stmt = entry.stmt
        if isinstance(stmt, ast.Check):
            stmt = stmt.statement
        analysis = Analyzer(self.db.catalog).analyze(stmt)
        diagnostics = list(analysis.diagnostics)
        if analysis.required_params:
            diagnostics.append(
                Diagnostic(
                    "info",
                    "SQL010",
                    f"statement requires {analysis.required_params} parameters",
                )
            )
        return diagnostics

    def _execute(self, sql: str, params: Sequence[Any]) -> Result:
        self._check_open()
        prof = _profiler.enabled
        cache_hit = prof and sql in self._statement_cache
        entry = self._parse_cached(sql)
        stmt = entry.stmt
        self._ensure_analyzed(entry, params)
        if not (prof or _M.enabled or _trace.enabled):
            return self._dispatch(entry, sql, params)
        t0 = _now()
        try:
            with _trace.span("execute", cat="minidb", stmt=type(stmt).__name__):
                result = self._dispatch(entry, sql, params, meter=prof)
        except Exception:
            if prof:
                _profiler.record(
                    self._fingerprint_of(entry, sql), sql, _now() - t0, error=True
                )
            raise
        elapsed = _now() - t0
        _STMT_SECONDS.observe(elapsed)
        _STATEMENTS.inc()
        if prof:
            self._profile_result(entry, sql, result, elapsed, cache_hit)
        return result

    # -- statement profiling -----------------------------------------------------------

    def _fingerprint_of(self, entry: _CachedStatement, sql: str) -> str:
        if entry.fingerprint is None:
            entry.fingerprint = _fingerprint(sql)
        return entry.fingerprint

    def _profile_result(
        self,
        entry: _CachedStatement,
        sql: str,
        result: Result,
        elapsed: float,
        cache_hit: bool,
    ) -> None:
        """Route one execution into the statement profiler.

        Materialized results finalize immediately.  Streaming results are
        finalized by a wrapping generator once the stream drains or is
        closed, accumulating only *active* pull time (clock stopped while
        the caller holds the row) on top of the dispatch time.
        """
        fp = self._fingerprint_of(entry, sql)
        if result.stream is not None:
            result.stream = self._profiled_rows(fp, sql, result, elapsed, cache_hit)
        elif result.batches is not None:
            result.batches = self._profiled_batches(fp, sql, result, elapsed, cache_hit)
        else:
            returned = len(result.rows) if result.rows else max(result.rowcount, 0)
            self._finalize_profiled(fp, sql, result, elapsed, returned, cache_hit)

    def _profiled_rows(
        self, fp: str, sql: str, result: Result, active0: float, cache_hit: bool
    ) -> Iterator[tuple]:
        inner = result.stream

        def run() -> Iterator[tuple]:
            active = active0
            returned = 0
            try:
                while True:
                    t = _now()
                    try:
                        row = next(inner)
                    except StopIteration:
                        active += _now() - t
                        return
                    active += _now() - t
                    returned += 1
                    yield row
            finally:
                inner.close()
                self._finalize_profiled(fp, sql, result, active, returned, cache_hit)

        return run()

    def _profiled_batches(
        self, fp: str, sql: str, result: Result, active0: float, cache_hit: bool
    ) -> Iterator[list[tuple]]:
        inner = result.batches

        def run() -> Iterator[list[tuple]]:
            active = active0
            returned = 0
            try:
                while True:
                    t = _now()
                    try:
                        batch = next(inner)
                    except StopIteration:
                        active += _now() - t
                        return
                    active += _now() - t
                    returned += len(batch)
                    yield batch
            finally:
                inner.close()
                self._finalize_profiled(fp, sql, result, active, returned, cache_hit)

        return run()

    def _finalize_profiled(
        self,
        fp: str,
        sql: str,
        result: Result,
        seconds: float,
        rows_returned: int,
        cache_hit: bool,
    ) -> None:
        plan = plan_snapshot(result.root) if result.root is not None else None
        scanned = result.stats.rows_scanned if result.stats is not None else 0
        _profiler.record(
            fp,
            sql,
            seconds,
            rows_returned=rows_returned,
            rows_scanned=scanned,
            plan=plan,
            cache_hit=cache_hit,
        )

    def _table_stats(self, tables: Sequence[str]) -> tuple:
        """Size fingerprint for the plan cache: one bucket per table.

        ``bit_length`` buckets row counts at power-of-two boundaries, so a
        table crossing an optimizer size threshold (hash-join build
        minimum, join-order swap) lands in a new bucket and forces a
        re-plan, while ordinary row churn inside a bucket keeps the plan.
        """
        db = self.db
        return tuple(len(db.table(t).rows).bit_length() for t in tables)

    def _plan_for(self, entry: _CachedStatement) -> "optimizer.PhysicalPlan":
        catalog = self.db.catalog
        if entry.plan is not None and entry.plan_version == catalog.version:
            if self._table_stats(entry.plan.tables) == entry.plan_stats:
                _PLAN_HITS.inc()
                return entry.plan.clone()
        _PLAN_MISSES.inc()
        with _trace.span("plan", cat="minidb"):
            plan = optimizer.plan_select(self.db, entry.stmt)
        entry.plan = plan
        entry.plan_version = catalog.version
        entry.plan_stats = self._table_stats(plan.tables)
        # Clone per execution: the cached tree must stay stateless so two
        # concurrently-draining cursors never share operator state.
        return plan.clone()

    def _dispatch(
        self, entry: _CachedStatement, sql: str, params: Sequence[Any],
        meter: bool = False,
    ) -> Result:
        stmt = entry.stmt
        if isinstance(stmt, _DDL_NODES):
            # DDL commits the open transaction and runs in its own.
            self.db.commit()
            self.db.begin()
            result = Executor(self.db, params).execute(stmt)
            if self.db.journal is not None:
                self.db.journal.log_ddl(sql)
            self.db.commit()
            return result
        if isinstance(stmt, _DML_NODES) or (
            isinstance(stmt, ast.ExplainAnalyze)
            and isinstance(stmt.statement, _DML_NODES)
        ):
            self.db.begin()  # no-op when already in a transaction
            return Executor(self.db, params, meter=meter).execute(stmt)
        if isinstance(stmt, ast.Select):
            return Executor(
                self.db, params, plan=self._plan_for(entry), meter=meter
            ).execute(stmt)
        return Executor(self.db, params, meter=meter).execute(stmt)


class Cursor:
    """A PEP 249 cursor over one connection."""

    arraysize = 1

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._closed = False
        self.description: Optional[list[tuple]] = None
        self.rowcount: int = -1
        self.lastrowid: Optional[int] = None
        self._rows: list[tuple] = []
        self._pos = 0
        self._stream: Optional[Iterator[tuple]] = None
        self._pending: list[tuple] = []
        # Vectorized SELECTs: an iterator of row batches plus the current
        # batch being sliced by fetchone/fetchmany.
        self._batches: Optional[Iterator[list[tuple]]] = None
        self._batch: list[tuple] = []
        self._bpos = 0

    # -- execution ---------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] | dict = ()) -> "Cursor":
        self._check_open()
        if isinstance(params, dict):
            raise InterfaceError("minidb supports positional parameters only")
        self._close_stream()
        result = self.connection._execute(sql, tuple(params))
        self.description = result.description
        self.rowcount = result.rowcount
        self.lastrowid = result.lastrowid
        self._rows = result.rows
        self._pos = 0
        self._pending = []
        self._stream = result.stream
        self._batches = result.batches
        self._batch = []
        self._bpos = 0
        if self._stream is not None:
            # Prefetch one row so first-row evaluation errors surface at
            # execute() time (like the materializing engine did, and like
            # sqlite3's first step); the rest of the plan stays lazy.
            first = next(self._stream, None)
            if first is None:
                self._stream = None
            else:
                self._pending.append(first)
        elif self._batches is not None:
            # Same contract for vectorized plans: pull the first batch so
            # evaluation errors surface here and fetchone stays a slice.
            first_batch = next(self._batches, None)
            if first_batch is None:
                self._batches = None
            else:
                self._batch = first_batch
        return self

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        self._check_open()
        self._close_stream()
        conn = self.connection
        prof = _profiler.enabled
        cache_hit = prof and sql in conn._statement_cache
        entry = conn._parse_cached(sql)
        stmt = entry.stmt
        if isinstance(stmt, ast.Insert) and stmt.select is None:
            # Vectorized fast path: parse/plan once, one journal batch.
            # Per-row parameter arity is checked by the batch builder.
            conn._ensure_analyzed(entry, None)
            conn.db.begin()
            if prof or _M.enabled or _trace.enabled:
                t0 = _now()
                with _trace.span("executemany", cat="minidb", table=stmt.table):
                    result = Executor(conn.db).execute_insert_batch(stmt, seq_of_params)
                elapsed = _now() - t0
                _STMT_SECONDS.observe(elapsed)
                _STATEMENTS.inc()
                _BATCHES.inc()
                if prof:
                    conn._finalize_profiled(
                        conn._fingerprint_of(entry, sql), sql, result,
                        elapsed, max(result.rowcount, 0), cache_hit,
                    )
            else:
                result = Executor(conn.db).execute_insert_batch(stmt, seq_of_params)
            self.description = None
            self.rowcount = result.rowcount
            self.lastrowid = result.lastrowid
            self._rows = []
            self._pos = 0
            self._pending = []
            return self
        total = 0
        last = None
        for params in seq_of_params:
            result = conn._execute(sql, tuple(params))
            if result.rowcount > 0:
                total += result.rowcount
            last = result
        self.description = last.description if last else None
        self.rowcount = total
        self.lastrowid = last.lastrowid if last else None
        self._rows = []
        self._pos = 0
        self._pending = []
        return self

    # -- fetch --------------------------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        self._check_open()
        if self._pos < len(self._rows):
            row = self._rows[self._pos]
            self._pos += 1
            return row
        if self._pending:
            return self._pending.pop(0)
        if self._bpos < len(self._batch):
            row = self._batch[self._bpos]
            self._bpos += 1
            return row
        if self._batches is not None:
            batch = next(self._batches, None)
            if batch is None:
                self._close_stream()
                return None
            self._batch = batch
            self._bpos = 1
            return batch[0]
        if self._stream is not None:
            row = next(self._stream, None)
            if row is None:
                self._close_stream()
            return row
        return None

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_open()
        n = size if size is not None else self.arraysize
        out: list[tuple] = []
        while len(out) < n:
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list[tuple]:
        self._check_open()
        out = self._rows[self._pos :]
        self._pos = len(self._rows)
        if self._pending:
            out.extend(self._pending)
            self._pending = []
        if self._bpos < len(self._batch) or self._batches is not None:
            out.extend(self._batch[self._bpos :])
            self._batch = []
            self._bpos = 0
            if self._batches is not None:
                for batch in self._batches:
                    out.extend(batch)
                self._batches = None
        if self._stream is not None:
            out.extend(self._stream)
            self._close_stream()
        return out

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- misc ----------------------------------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # pragma: no cover - PEP 249 no-op
        pass

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover - no-op
        pass

    def close(self) -> None:
        self._close_stream()
        self._closed = True
        self._rows = []
        self._pending = []

    def _close_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        if self._batches is not None:
            self._batches.close()
            self._batches = None
        self._batch = []
        self._bpos = 0

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()


def connect(database: str = ":memory:") -> Connection:
    """Open a minidb database (``":memory:"`` or a file path)."""
    return Connection(database)


def _split_statements(script: str) -> list[str]:
    """Split on ``;`` outside string literals/comments."""
    out: list[str] = []
    buf: list[str] = []
    i = 0
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if script[j] == "'":
                    if j + 1 < n and script[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            buf.append(script[i : j + 1])
            i = j + 1
            continue
        if ch == "-" and script.startswith("--", i):
            j = script.find("\n", i)
            if j < 0:
                break
            i = j + 1
            buf.append("\n")
            continue
        if ch == ";":
            text = "".join(buf).strip()
            if text:
                out.append(text)
            buf = []
            i += 1
            continue
        buf.append(ch)
        i += 1
    text = "".join(buf).strip()
    if text:
        out.append(text)
    return out
