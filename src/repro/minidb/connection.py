"""DB-API 2.0 Connection and Cursor for minidb.

This mirrors the interface PerfTrack used through cx_Oracle and pyGreSQL:
``connect() -> Connection``, ``Connection.cursor() -> Cursor``,
``Cursor.execute(sql, params)`` with ``?`` (qmark) or ``%s`` (format)
placeholders, ``fetchone/fetchmany/fetchall``, ``description``,
``rowcount`` and ``lastrowid``.

Transaction semantics follow PEP 249: an implicit transaction opens on the
first data-modifying statement and is closed by ``commit()``/``rollback()``.
DDL statements commit implicitly (before and after), like Oracle.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Iterable, Iterator, Optional, Sequence

from ..obs.clock import now as _now
from ..obs.metrics import metrics as _M
from ..obs.profiler import profiler as _profiler
from ..obs.tracing import trace as _trace
from . import ast_nodes as ast
from . import optimizer
from .analyzer import Analyzer, Diagnostic
from .errors import InterfaceError, SemanticError, SessionError, SqlSyntaxError
from .executor import Executor, Result
from .locks import SCHEMA_LOCK
from .operators import plan_snapshot
from .parser import fingerprint as _fingerprint, parse
from .storage import Database, Transaction
from .wal import Journal, load_snapshot

_DDL_NODES = (
    ast.CreateTable,
    ast.DropTable,
    ast.CreateIndex,
    ast.DropIndex,
)
_DML_NODES = (ast.Insert, ast.Update, ast.Delete)

# Connection-layer metrics (see docs/observability.md); no-ops while the
# process-wide registry is disabled.
_STATEMENTS = _M.counter("minidb.statements")
_STMT_SECONDS = _M.histogram("minidb.statement_seconds")
_CACHE_HITS = _M.counter("minidb.statement_cache.hits")
_CACHE_MISSES = _M.counter("minidb.statement_cache.misses")
_MEMO_HITS = _M.counter("minidb.analyzer.memo_hits")
_ANALYZE_RUNS = _M.counter("minidb.analyzer.runs")
_BATCHES = _M.counter("minidb.executemany_batches")
_PLAN_HITS = _M.counter("minidb.plan_cache.hits")
_PLAN_MISSES = _M.counter("minidb.plan_cache.misses")

#: Parsed-statement cache capacity per connection.  Eviction is LRU so a
#: burst of one-off statements cannot dump the hot loader statements.
STATEMENT_CACHE_SIZE = 512


class _CachedStatement:
    """A parsed statement plus its memoized semantic analysis and plan.

    ``version`` is the catalog generation the statement was last analyzed
    against; a DDL statement bumps it, forcing cached statements through
    the analyzer once more before their next execution.  SELECTs also
    cache their lowered physical plan: ``plan_version`` is the catalog
    generation the plan was built against (so CREATE/DROP INDEX — which
    bumps the generation — invalidates the plan, not just the analysis),
    and ``plan_stats`` fingerprints the size of every referenced table so
    a table growing past an optimizer threshold re-plans too.
    """

    __slots__ = (
        "stmt", "version", "required_params", "plan", "plan_version",
        "plan_stats", "fingerprint",
    )

    def __init__(self, stmt) -> None:
        self.stmt = stmt
        self.version = -1
        self.required_params = 0
        self.plan: Optional[optimizer.PhysicalPlan] = None
        self.plan_version = -1
        self.plan_stats: Optional[tuple] = None
        # Normalized statement text for the profiler, computed on first
        # profiled execution and cached with the parse.
        self.fingerprint: Optional[str] = None


class Engine:
    """A shared minidb engine: one database, many concurrent sessions.

    The engine owns the storage, the journal, the writer-lock manager
    (through the database) and the parsed-statement/plan cache every
    session shares.  ``Engine.connect()`` flips the database into shared
    mode — committed table versions are published for snapshot reads —
    and hands out an independent session :class:`Connection`.  The plain
    module-level ``connect()`` keeps the original embedded single-session
    shape by building a private engine per connection.
    """

    def __init__(self, database: str = ":memory:") -> None:
        self.db = Database()
        self.path: Optional[str] = None
        self._closed = False
        self._cache_lock = threading.RLock()
        self._statement_cache: OrderedDict[str, Any] = OrderedDict()
        self._session_seq = 0
        if database != ":memory:":
            self.path = os.fspath(database)
            if os.path.exists(self.path):
                load_snapshot(self.db, self.path)
            journal = Journal(self.db, self.path)
            journal.replay()
            self.db.journal = journal

    def connect(self) -> "Connection":
        """Open an independent session over the shared database."""
        if self._closed:
            raise SessionError(
                "engine is closed", code="SES002",
                hint="create a new Engine; sessions cannot outlive it",
            )
        self.db.enable_shared()
        with self._cache_lock:
            self._session_seq += 1
            owner = f"session-{self._session_seq}"
        return Connection(_engine=self, _owner=owner)

    def close(self) -> None:
        """Checkpoint the journal and refuse further sessions."""
        if self._closed:
            return
        if self.db.journal is not None:
            self.db.journal.checkpoint()
        self._closed = True

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def parse_cached(self, sql: str) -> _CachedStatement:
        """Parse *sql* through the shared LRU statement cache."""
        with self._cache_lock:
            entry = self._statement_cache.get(sql)
            if entry is None:
                _CACHE_MISSES.inc()
                with _trace.span("parse", cat="minidb"):
                    entry = _CachedStatement(parse(sql))
                while len(self._statement_cache) >= STATEMENT_CACHE_SIZE:
                    self._statement_cache.popitem(last=False)
                self._statement_cache[sql] = entry
            else:
                _CACHE_HITS.inc()
                self._statement_cache.move_to_end(sql)
            return entry


class Connection:
    """An open minidb database handle (one session).

    Created directly (or via ``connect()``) it embeds a private
    :class:`Engine` and behaves exactly like the original single-session
    connection.  Created via :meth:`Engine.connect` it is one session of
    a shared database: reads run against a committed snapshot, writes
    serialize through per-table writer locks, and the session's own
    transaction is kept on the connection instead of the database.
    """

    def __init__(
        self,
        database: str = ":memory:",
        *,
        _engine: Optional[Engine] = None,
        _owner: Optional[str] = None,
    ) -> None:
        if _engine is None:
            _engine = Engine(database)
        self.engine = _engine
        self.db = _engine.db
        self.path = _engine.path
        #: Lock-manager owner token; ``None`` means embedded single-session.
        self.owner = _owner
        self._closed = False
        self._txn: Optional[Transaction] = None
        # Bumped whenever this session's transaction ends; cursors that
        # captured an in-transaction read view refuse to stream past it.
        self._txn_epoch = 0

    @property
    def _statement_cache(self) -> "OrderedDict[str, Any]":
        return self.engine._statement_cache

    # -- PEP 249 interface ---------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        self._check_open()
        if self.owner is None:
            self.db.commit()
            return
        if self._txn is not None and self._txn.active:
            self.db.commit(self._txn)
            self._txn_epoch += 1
        self._txn = None

    def rollback(self) -> None:
        self._check_open()
        if self.owner is None:
            self.db.rollback()
            return
        if self._txn is not None and self._txn.active:
            self.db.rollback(self._txn)
            self._txn_epoch += 1
        self._txn = None

    def close(self) -> None:
        if self._closed:
            return
        if self.owner is None:
            self.db.rollback()
            if self.db.journal is not None:
                self.db.journal.checkpoint()
        else:
            # A session rolls back its own work and drops its locks; the
            # shared journal is checkpointed by Engine.close(), not here.
            if self._txn is not None and self._txn.active:
                self.db.rollback(self._txn)
                self._txn_epoch += 1
            self._txn = None
            self.db.locks.release_all(self.owner)
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    # -- convenience ----------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        cur = self.cursor()
        cur.execute(sql, params)
        return cur

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        cur = self.cursor()
        cur.executemany(sql, seq_of_params)
        return cur

    def executescript(self, script: str) -> None:
        """Run multiple ``;``-separated statements (no parameters)."""
        for stmt_sql in _split_statements(script):
            self.execute(stmt_sql)

    def checkpoint(self) -> None:
        """Fold the WAL into the snapshot (no-op for :memory: databases)."""
        self._check_open()
        if self.db.journal is None:
            return
        if self.owner is None:
            self.db.commit()
            self.db.journal.checkpoint()
            return
        # Shared mode: quiesce writers first — the snapshot writer walks
        # live table state, so take every table lock plus the schema lock.
        self.commit()
        names = [SCHEMA_LOCK] + [key for key in self.db.tables]
        self.db.locks.acquire_many(self.owner, names)
        try:
            self.db.journal.checkpoint()
        finally:
            self.db.locks.release_all(self.owner)

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError(
                "connection is closed",
                code="SES001",
                hint="open a new session with connect() or Engine.connect()",
            )

    # -- internals -----------------------------------------------------------------------

    def _parse_cached(self, sql: str) -> _CachedStatement:
        return self.engine.parse_cached(sql)

    def _begin(self) -> Optional[Transaction]:
        """Open (or join) this session's transaction.

        Embedded mode keeps the database's implicit transaction and
        returns ``None`` (executors then resolve it through storage);
        shared sessions get an explicit owner-tagged transaction pinned
        to a committed snapshot.
        """
        if self.owner is None:
            self.db.begin()
            return None
        if self._txn is None or not self._txn.active:
            self._txn = self.db.begin(owner=self.owner)
        return self._txn

    def _read_view(self):
        """What reads run against: the live database when embedded, this
        session's pinned (or a fresh) committed snapshot when shared."""
        if self.owner is None:
            return self.db
        txn = self._txn
        if txn is not None and txn.active and txn.snapshot is not None:
            return txn.snapshot
        return self.db.snapshot_view()

    def _ensure_analyzed(
        self, entry: _CachedStatement, params: Optional[Sequence[Any]]
    ) -> None:
        """Fail fast on semantic errors before any execution side effects.

        The analysis itself is memoized per cached statement and catalog
        generation; only the (cheap) placeholder-arity check runs per call.
        """
        if isinstance(entry.stmt, ast.Check):
            return  # CHECK reports diagnostics instead of failing
        catalog = self.db.catalog
        if entry.version != catalog.version:
            _ANALYZE_RUNS.inc()
            with _trace.span("analyze", cat="minidb"):
                analysis = Analyzer(catalog).analyze(entry.stmt)
            analysis.raise_first_error()
            entry.required_params = analysis.required_params
            entry.version = catalog.version
        else:
            _MEMO_HITS.inc()
        if params is not None and entry.required_params > len(params):
            raise SemanticError(
                f"statement requires at least {entry.required_params} parameters, "
                f"{len(params)} supplied",
                code="SQL010",
            )

    def check(self, sql: str) -> "list[Diagnostic]":
        """Statically analyze *sql* without executing it.

        Returns the full list of analyzer diagnostics (errors, warnings and
        an ``info`` entry for required parameters); an unparseable statement
        yields a single ``SQL000`` error diagnostic.
        """
        self._check_open()
        try:
            entry = self._parse_cached(sql)
        except SqlSyntaxError as exc:
            return [Diagnostic("error", "SQL000", str(exc))]
        except SemanticError as exc:
            # e.g. bare EXPLAIN ANALYZE, rejected at parse with a hint
            return [Diagnostic("error", exc.code, str(exc), exc.suggestion)]
        stmt = entry.stmt
        if isinstance(stmt, ast.Check):
            stmt = stmt.statement
        analysis = Analyzer(self.db.catalog).analyze(stmt)
        diagnostics = list(analysis.diagnostics)
        if analysis.required_params:
            diagnostics.append(
                Diagnostic(
                    "info",
                    "SQL010",
                    f"statement requires {analysis.required_params} parameters",
                )
            )
        return diagnostics

    def _execute(self, sql: str, params: Sequence[Any]) -> Result:
        self._check_open()
        prof = _profiler.enabled
        cache_hit = prof and sql in self._statement_cache
        entry = self._parse_cached(sql)
        stmt = entry.stmt
        self._ensure_analyzed(entry, params)
        if not (prof or _M.enabled or _trace.enabled):
            return self._dispatch(entry, sql, params)
        t0 = _now()
        try:
            with _trace.span("execute", cat="minidb", stmt=type(stmt).__name__):
                result = self._dispatch(entry, sql, params, meter=prof)
        except Exception:
            if prof:
                _profiler.record(
                    self._fingerprint_of(entry, sql), sql, _now() - t0, error=True
                )
            raise
        elapsed = _now() - t0
        _STMT_SECONDS.observe(elapsed)
        _STATEMENTS.inc()
        if prof:
            self._profile_result(entry, sql, result, elapsed, cache_hit)
        return result

    # -- statement profiling -----------------------------------------------------------

    def _fingerprint_of(self, entry: _CachedStatement, sql: str) -> str:
        if entry.fingerprint is None:
            entry.fingerprint = _fingerprint(sql)
        return entry.fingerprint

    def _profile_result(
        self,
        entry: _CachedStatement,
        sql: str,
        result: Result,
        elapsed: float,
        cache_hit: bool,
    ) -> None:
        """Route one execution into the statement profiler.

        Materialized results finalize immediately.  Streaming results are
        finalized by a wrapping generator once the stream drains or is
        closed, accumulating only *active* pull time (clock stopped while
        the caller holds the row) on top of the dispatch time.
        """
        fp = self._fingerprint_of(entry, sql)
        if result.stream is not None:
            result.stream = self._profiled_rows(fp, sql, result, elapsed, cache_hit)
        elif result.batches is not None:
            result.batches = self._profiled_batches(fp, sql, result, elapsed, cache_hit)
        else:
            returned = len(result.rows) if result.rows else max(result.rowcount, 0)
            self._finalize_profiled(fp, sql, result, elapsed, returned, cache_hit)

    def _profiled_rows(
        self, fp: str, sql: str, result: Result, active0: float, cache_hit: bool
    ) -> Iterator[tuple]:
        inner = result.stream

        def run() -> Iterator[tuple]:
            active = active0
            returned = 0
            try:
                while True:
                    t = _now()
                    try:
                        row = next(inner)
                    except StopIteration:
                        active += _now() - t
                        return
                    active += _now() - t
                    returned += 1
                    yield row
            finally:
                inner.close()
                self._finalize_profiled(fp, sql, result, active, returned, cache_hit)

        return run()

    def _profiled_batches(
        self, fp: str, sql: str, result: Result, active0: float, cache_hit: bool
    ) -> Iterator[list[tuple]]:
        inner = result.batches

        def run() -> Iterator[list[tuple]]:
            active = active0
            returned = 0
            try:
                while True:
                    t = _now()
                    try:
                        batch = next(inner)
                    except StopIteration:
                        active += _now() - t
                        return
                    active += _now() - t
                    returned += len(batch)
                    yield batch
            finally:
                inner.close()
                self._finalize_profiled(fp, sql, result, active, returned, cache_hit)

        return run()

    def _finalize_profiled(
        self,
        fp: str,
        sql: str,
        result: Result,
        seconds: float,
        rows_returned: int,
        cache_hit: bool,
    ) -> None:
        plan = plan_snapshot(result.root) if result.root is not None else None
        scanned = result.stats.rows_scanned if result.stats is not None else 0
        _profiler.record(
            fp,
            sql,
            seconds,
            rows_returned=rows_returned,
            rows_scanned=scanned,
            plan=plan,
            cache_hit=cache_hit,
        )

    def _table_stats(self, tables: Sequence[str]) -> tuple:
        """Size fingerprint for the plan cache: one bucket per table.

        ``bit_length`` buckets row counts at power-of-two boundaries, so a
        table crossing an optimizer size threshold (hash-join build
        minimum, join-order swap) lands in a new bucket and forces a
        re-plan, while ordinary row churn inside a bucket keeps the plan.
        """
        db = self.db
        return tuple(len(db.table(t).rows).bit_length() for t in tables)

    def _plan_for(self, entry: _CachedStatement) -> "optimizer.PhysicalPlan":
        catalog = self.db.catalog
        if entry.plan is not None and entry.plan_version == catalog.version:
            if self._table_stats(entry.plan.tables) == entry.plan_stats:
                _PLAN_HITS.inc()
                return entry.plan.clone()
        _PLAN_MISSES.inc()
        with _trace.span("plan", cat="minidb"):
            plan = optimizer.plan_select(self.db, entry.stmt)
        entry.plan = plan
        entry.plan_version = catalog.version
        entry.plan_stats = self._table_stats(plan.tables)
        # Clone per execution: the cached tree must stay stateless so two
        # concurrently-draining cursors never share operator state.
        return plan.clone()

    def _dispatch(
        self, entry: _CachedStatement, sql: str, params: Sequence[Any],
        meter: bool = False,
    ) -> Result:
        stmt = entry.stmt
        if self.owner is not None and isinstance(
            stmt, (ast.Begin, ast.Commit, ast.Rollback)
        ):
            # Session transactions live on the connection, not the shared
            # database: route SQL transaction control through the session.
            if isinstance(stmt, ast.Begin):
                self._begin()
            elif isinstance(stmt, ast.Commit):
                self.commit()
            else:
                self.rollback()
            return Result(rowcount=0)
        if isinstance(stmt, _DDL_NODES):
            # DDL commits the open transaction and runs in its own.
            if self.owner is None:
                self.db.commit()
                txn = self.db.begin()
                result = Executor(self.db, params).execute(stmt)
                if self.db.journal is not None:
                    txn.log(("ddl", sql))
                self.db.commit()
                return result
            # Shared mode: exclude every writer while the catalog changes.
            self.commit()
            names = [SCHEMA_LOCK] + list(self.db.tables)
            self.db.locks.acquire_many(self.owner, names)
            txn = self.db.begin(owner=self.owner)
            try:
                result = Executor(self.db, params, txn=txn).execute(stmt)
                if self.db.journal is not None:
                    txn.log(("ddl", sql))
                self.db.commit(txn)
            except BaseException:
                self.db.rollback(txn)
                raise
            finally:
                self.db.locks.release_all(self.owner)
            return result
        if isinstance(stmt, _DML_NODES) or (
            isinstance(stmt, ast.ExplainAnalyze)
            and isinstance(stmt.statement, _DML_NODES)
        ):
            txn = self._begin()  # joins the open transaction if any
            return Executor(self.db, params, meter=meter, txn=txn).execute(stmt)
        if isinstance(stmt, ast.Select):
            return Executor(
                self._read_view(), params, plan=self._plan_for(entry), meter=meter
            ).execute(stmt)
        # Remaining statements (CHECK, EXPLAIN, EXPLAIN ANALYZE of a
        # SELECT, embedded BEGIN/COMMIT/ROLLBACK) are read-only or
        # transaction control; run them against the session's read view.
        return Executor(self._read_view(), params, meter=meter).execute(stmt)


class Cursor:
    """A PEP 249 cursor over one connection."""

    arraysize = 1

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._closed = False
        self.description: Optional[list[tuple]] = None
        self.rowcount: int = -1
        self.lastrowid: Optional[int] = None
        self._rows: list[tuple] = []
        self._pos = 0
        self._stream: Optional[Iterator[tuple]] = None
        self._pending: list[tuple] = []
        # Vectorized SELECTs: an iterator of row batches plus the current
        # batch being sliced by fetchone/fetchmany.
        self._batches: Optional[Iterator[list[tuple]]] = None
        self._batch: list[tuple] = []
        self._bpos = 0
        # Shared-mode sessions: the connection's transaction epoch this
        # cursor's streaming read view belongs to (None = not pinned).
        self._epoch: Optional[int] = None

    # -- execution ---------------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] | dict = ()) -> "Cursor":
        self._check_open()
        if isinstance(params, dict):
            raise InterfaceError("minidb supports positional parameters only")
        self._close_stream()
        result = self.connection._execute(sql, tuple(params))
        self.description = result.description
        self.rowcount = result.rowcount
        self.lastrowid = result.lastrowid
        self._rows = result.rows
        self._pos = 0
        self._pending = []
        self._stream = result.stream
        self._batches = result.batches
        self._batch = []
        self._bpos = 0
        if self._stream is not None:
            # Prefetch one row so first-row evaluation errors surface at
            # execute() time (like the materializing engine did, and like
            # sqlite3's first step); the rest of the plan stays lazy.
            first = next(self._stream, None)
            if first is None:
                self._stream = None
            else:
                self._pending.append(first)
        elif self._batches is not None:
            # Same contract for vectorized plans: pull the first batch so
            # evaluation errors surface here and fetchone stays a slice.
            first_batch = next(self._batches, None)
            if first_batch is None:
                self._batches = None
            else:
                self._batch = first_batch
        conn = self.connection
        if (
            conn.owner is not None
            and (self._stream is not None or self._batches is not None)
            and conn._txn is not None
            and conn._txn.active
        ):
            # An in-transaction streaming cursor reads through the live
            # tables this session touched; once the transaction ends that
            # view is gone, so pin the epoch and refuse stale fetches.
            self._epoch = conn._txn_epoch
        else:
            self._epoch = None
        return self

    def executemany(self, sql: str, seq_of_params: Iterable[Sequence[Any]]) -> "Cursor":
        self._check_open()
        self._close_stream()
        conn = self.connection
        prof = _profiler.enabled
        cache_hit = prof and sql in conn._statement_cache
        entry = conn._parse_cached(sql)
        stmt = entry.stmt
        if isinstance(stmt, ast.Insert) and stmt.select is None:
            # Vectorized fast path: parse/plan once, one journal batch.
            # Per-row parameter arity is checked by the batch builder.
            conn._ensure_analyzed(entry, None)
            txn = conn._begin()
            if prof or _M.enabled or _trace.enabled:
                t0 = _now()
                with _trace.span("executemany", cat="minidb", table=stmt.table):
                    result = Executor(conn.db, txn=txn).execute_insert_batch(
                        stmt, seq_of_params
                    )
                elapsed = _now() - t0
                _STMT_SECONDS.observe(elapsed)
                _STATEMENTS.inc()
                _BATCHES.inc()
                if prof:
                    conn._finalize_profiled(
                        conn._fingerprint_of(entry, sql), sql, result,
                        elapsed, max(result.rowcount, 0), cache_hit,
                    )
            else:
                result = Executor(conn.db, txn=txn).execute_insert_batch(
                    stmt, seq_of_params
                )
            self.description = None
            self.rowcount = result.rowcount
            self.lastrowid = result.lastrowid
            self._rows = []
            self._pos = 0
            self._pending = []
            return self
        total = 0
        last = None
        for params in seq_of_params:
            result = conn._execute(sql, tuple(params))
            if result.rowcount > 0:
                total += result.rowcount
            last = result
        self.description = last.description if last else None
        self.rowcount = total
        self.lastrowid = last.lastrowid if last else None
        self._rows = []
        self._pos = 0
        self._pending = []
        return self

    # -- fetch --------------------------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        self._check_open()
        self._check_snapshot()
        if self._pos < len(self._rows):
            row = self._rows[self._pos]
            self._pos += 1
            return row
        if self._pending:
            return self._pending.pop(0)
        if self._bpos < len(self._batch):
            row = self._batch[self._bpos]
            self._bpos += 1
            return row
        if self._batches is not None:
            batch = next(self._batches, None)
            if batch is None:
                self._close_stream()
                return None
            self._batch = batch
            self._bpos = 1
            return batch[0]
        if self._stream is not None:
            row = next(self._stream, None)
            if row is None:
                self._close_stream()
            return row
        return None

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_open()
        n = size if size is not None else self.arraysize
        out: list[tuple] = []
        while len(out) < n:
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list[tuple]:
        self._check_open()
        self._check_snapshot()
        out = self._rows[self._pos :]
        self._pos = len(self._rows)
        if self._pending:
            out.extend(self._pending)
            self._pending = []
        if self._bpos < len(self._batch) or self._batches is not None:
            out.extend(self._batch[self._bpos :])
            self._batch = []
            self._bpos = 0
            if self._batches is not None:
                for batch in self._batches:
                    out.extend(batch)
                self._batches = None
        if self._stream is not None:
            out.extend(self._stream)
            self._close_stream()
        return out

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- misc ----------------------------------------------------------------------------

    def setinputsizes(self, sizes) -> None:  # pragma: no cover - PEP 249 no-op
        pass

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover - no-op
        pass

    def close(self) -> None:
        self._close_stream()
        self._closed = True
        self._rows = []
        self._pending = []

    def _close_stream(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        if self._batches is not None:
            self._batches.close()
            self._batches = None
        self._batch = []
        self._bpos = 0

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError(
                "cursor is closed",
                code="SES004",
                hint="create a new cursor from the connection",
            )
        self.connection._check_open()

    def _check_snapshot(self) -> None:
        if self._epoch is not None and self._epoch != self.connection._txn_epoch:
            self._close_stream()
            raise SessionError(
                "cursor read view ended with its transaction",
                code="SES003",
                hint=(
                    "fetch all rows before COMMIT/ROLLBACK, or re-execute "
                    "the query in the new transaction"
                ),
            )


def connect(database: str = ":memory:") -> Connection:
    """Open a minidb database (``":memory:"`` or a file path)."""
    return Connection(database)


def _split_statements(script: str) -> list[str]:
    """Split on ``;`` outside string literals/comments."""
    out: list[str] = []
    buf: list[str] = []
    i = 0
    n = len(script)
    while i < n:
        ch = script[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if script[j] == "'":
                    if j + 1 < n and script[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            buf.append(script[i : j + 1])
            i = j + 1
            continue
        if ch == "-" and script.startswith("--", i):
            j = script.find("\n", i)
            if j < 0:
                break
            i = j + 1
            buf.append("\n")
            continue
        if ch == ";":
            text = "".join(buf).strip()
            if text:
                out.append(text)
            buf = []
            i += 1
            continue
        buf.append(ch)
        i += 1
    text = "".join(buf).strip()
    if text:
        out.append(text)
    return out
