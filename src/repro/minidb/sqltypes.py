"""SQL value types and coercion rules for minidb.

minidb follows a light "type affinity" model similar to SQLite: every
column declares an affinity (INTEGER, REAL, TEXT, BLOB, BOOLEAN, NUMERIC)
and stored values are coerced toward that affinity where the coercion is
lossless; otherwise the value is stored as given.  NULL is represented by
Python ``None`` throughout.
"""

from __future__ import annotations

from typing import Any

from .errors import DataError

# Canonical affinity names.
INTEGER = "INTEGER"
REAL = "REAL"
TEXT = "TEXT"
BLOB = "BLOB"
BOOLEAN = "BOOLEAN"
NUMERIC = "NUMERIC"

_AFFINITY_KEYWORDS: dict[str, str] = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "TINYINT": INTEGER,
    "SERIAL": INTEGER,
    "REAL": REAL,
    "FLOAT": REAL,
    "DOUBLE": REAL,
    "NUMERIC": NUMERIC,
    "DECIMAL": NUMERIC,
    "NUMBER": NUMERIC,
    "TEXT": TEXT,
    "CHAR": TEXT,
    "VARCHAR": TEXT,
    "VARCHAR2": TEXT,
    "CLOB": TEXT,
    "STRING": TEXT,
    "BLOB": BLOB,
    "BYTEA": BLOB,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "DATE": TEXT,
    "TIMESTAMP": TEXT,
}


def affinity_for(type_name: str) -> str:
    """Map a declared SQL type name to a storage affinity.

    Unknown type names get NUMERIC affinity (store-as-given), matching the
    forgiving behaviour of SQLite that made PerfTrack's schema portable.
    """
    base = type_name.split("(", 1)[0].strip().upper()
    # "DOUBLE PRECISION" and friends: look at the first word.
    first = base.split()[0] if base else ""
    return _AFFINITY_KEYWORDS.get(base, _AFFINITY_KEYWORDS.get(first, NUMERIC))


def coerce(value: Any, affinity: str) -> Any:
    """Coerce *value* toward *affinity*; raise DataError on impossible casts.

    ``None`` always passes through unchanged.
    """
    if value is None:
        return None
    if affinity == INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if value.is_integer():
                return int(value)
            return value  # keep fractional floats intact (sqlite-like)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                try:
                    f = float(value)
                except ValueError:
                    raise DataError(
                        f"cannot store {value!r} in INTEGER column"
                    ) from None
                return int(f) if f.is_integer() else f
        raise DataError(f"cannot store {type(value).__name__} in INTEGER column")
    if affinity == REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise DataError(f"cannot store {value!r} in REAL column") from None
        raise DataError(f"cannot store {type(value).__name__} in REAL column")
    if affinity == TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, bytes):
            return value.decode("utf-8", "replace")
        raise DataError(f"cannot store {type(value).__name__} in TEXT column")
    if affinity == BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        if isinstance(value, str):
            low = value.strip().lower()
            if low in ("t", "true", "1", "yes", "on"):
                return True
            if low in ("f", "false", "0", "no", "off"):
                return False
            raise DataError(f"cannot store {value!r} in BOOLEAN column")
        raise DataError(f"cannot store {type(value).__name__} in BOOLEAN column")
    if affinity == BLOB:
        if isinstance(value, (bytes, bytearray, memoryview)):
            return bytes(value)
        if isinstance(value, str):
            return value.encode("utf-8")
        raise DataError(f"cannot store {type(value).__name__} in BLOB column")
    # NUMERIC: numbers stay numbers, numeric-looking strings become numbers.
    if isinstance(value, (bool, int, float, bytes)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return value
    return value


#: Sort-ordering rank per cross-type class.  Mirrors SQLite's ordering:
#: NULL < numbers < text < blobs.  Booleans sort with numbers.
def sort_key(value: Any) -> tuple[int, Any]:
    """Total-order key usable across mixed-type columns."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, bytes):
        return (3, value)
    return (4, repr(value))


def compare(a: Any, b: Any) -> int | None:
    """Three-way SQL comparison; returns None when either side is NULL."""
    if a is None or b is None:
        return None
    ka, kb = sort_key(a), sort_key(b)
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0


def values_equal(a: Any, b: Any) -> bool | None:
    """SQL equality with NULL propagation."""
    c = compare(a, b)
    return None if c is None else c == 0
