"""Static semantic analysis for minidb SQL statements.

The analyzer runs between parse and plan: it resolves every name against
the catalog (tables, columns, aliases — with did-you-mean suggestions),
type-checks expressions against column affinities, and verifies
placeholder arity and INSERT column/value counts.  A statement that would
fail mid-execution with a KeyError now fails *before* execution with a
structured :class:`~repro.minidb.errors.SemanticError` carrying a rule
code, and ``EXPLAIN [ANALYZE] CHECK <stmt>`` / ``Connection.check(sql)``
expose the full diagnostic list without executing anything.

Rule catalogue (``error`` unless noted):

========  ==================================================================
SQL000    syntax error (surfaced through ``check()`` only)
SQL001    unknown table (warning when a FOREIGN KEY references one)
SQL002    unknown column
SQL003    unknown table qualifier (alias not bound in any enclosing scope)
SQL004    ambiguous unqualified column (warning: the engine resolves it)
SQL005    unknown function
SQL006    wrong number of function arguments
SQL007    aggregate misuse (aggregate in WHERE/SET/ON, or nested aggregate)
SQL008    INSERT column/value count mismatch
SQL009    literal value cannot be stored in the target column's affinity
SQL010    too few parameters supplied (execute-time; ``info`` in check())
SQL011    duplicate table name/alias in one FROM clause
SQL012    UNION arms select a different number of columns
SQL013    cross-affinity comparison or arithmetic on TEXT/BLOB (warning)
SQL014    duplicate column (CREATE TABLE, INSERT list, UPDATE SET)
SQL015    schema conflict (object exists / does not exist)
SQL016    DEFAULT is not a literal
SQL017    IN/scalar subquery must select exactly one column
SQL018    '*' has no source columns / unknown ``t.*`` qualifier
SQL019    bad ORDER BY (position out of range, or expression in compound)
SQL020    NOT NULL column without default omitted from INSERT (warning)
========  ==================================================================

Semantics were chosen to be *no stricter than the engine on statements
that can execute*: anything the executor would accept on some database
state is accepted (or warned about), anything it rejects on every row it
touches is an error here.  The differential guard in
``tests/minidb/test_analyzer.py`` holds the analyzer to that contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from . import ast_nodes as ast
from .catalog import Catalog
from .errors import DataError, SemanticError, closest
from .expressions import SCALAR_FUNCTIONS
from .parser import AGGREGATE_NAMES
from .sqltypes import BLOB, BOOLEAN, INTEGER, REAL, TEXT, affinity_for, coerce

__all__ = ["Analyzer", "Analysis", "Diagnostic", "analyze"]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the semantic analyzer."""

    severity: str  # "error" | "warning" | "info"
    code: str
    message: str
    suggestion: Optional[str] = None

    def __str__(self) -> str:
        text = f"{self.severity} {self.code}: {self.message}"
        if self.suggestion:
            text += f"; did you mean {self.suggestion!r}?"
        return text


@dataclass
class Analysis:
    """Outcome of analyzing one statement."""

    diagnostics: List[Diagnostic]
    required_params: int

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first_error(self) -> None:
        for d in self.diagnostics:
            if d.severity == "error":
                raise SemanticError(d.message, code=d.code, suggestion=d.suggestion)


# Min/max argument counts of the built-in scalar functions (None = unbounded).
_SCALAR_ARITY: dict[str, Tuple[int, Optional[int]]] = {
    "LOWER": (1, 1), "UPPER": (1, 1), "LENGTH": (1, 1), "ABS": (1, 1),
    "ROUND": (1, 2), "COALESCE": (1, None), "IFNULL": (2, 2), "NULLIF": (2, 2),
    "SUBSTR": (2, 3), "SUBSTRING": (2, 3), "INSTR": (2, 2),
    "TRIM": (1, 1), "LTRIM": (1, 1), "RTRIM": (1, 1), "REPLACE": (3, 3),
    "TYPEOF": (1, 1), "MIN2": (2, 2), "MAX2": (2, 2),
    "CAST_INT": (1, 1), "CAST_REAL": (1, 1), "CAST_TEXT": (1, 1),
}

_FUNC_AFFINITY: dict[str, str] = {
    "LOWER": TEXT, "UPPER": TEXT, "SUBSTR": TEXT, "SUBSTRING": TEXT,
    "TRIM": TEXT, "LTRIM": TEXT, "RTRIM": TEXT, "REPLACE": TEXT,
    "CAST_TEXT": TEXT, "TYPEOF": TEXT, "GROUP_CONCAT": TEXT,
    "LENGTH": INTEGER, "INSTR": INTEGER, "COUNT": INTEGER, "CAST_INT": INTEGER,
    "CAST_REAL": REAL, "AVG": REAL, "TOTAL": REAL,
}

_ARITH_OPS = ("+", "-", "*", "/", "%")
_COMPARE_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _type_class(affinity: Optional[str]) -> Optional[str]:
    """Cross-type comparison class per sqltypes.sort_key rank."""
    if affinity in (INTEGER, REAL, BOOLEAN):
        return "numeric"
    if affinity == TEXT:
        return "text"
    if affinity == BLOB:
        return "blob"
    return None  # NUMERIC / unknown: could hold anything


class _Binding:
    """One FROM-clause binding.  ``columns is None`` means "unknown shape"
    (the table itself was unresolved): accept any column to avoid cascades."""

    __slots__ = ("name", "columns", "affinities", "_lower")

    def __init__(
        self,
        name: str,
        columns: Optional[Sequence[str]],
        affinities: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        self.name = name
        self.columns = list(columns) if columns is not None else None
        self.affinities = (
            list(affinities)
            if affinities is not None
            else ([None] * len(self.columns) if self.columns is not None else None)
        )
        self._lower = (
            [c.lower() for c in self.columns] if self.columns is not None else None
        )

    def column_affinity(self, column: str) -> Optional[str]:
        if self._lower is None:
            return None
        try:
            return self.affinities[self._lower.index(column.lower())]
        except ValueError:
            return None

    def has_column(self, column: str) -> bool:
        return self._lower is not None and column.lower() in self._lower


class _Env:
    """Chained static scope: one level per SELECT, like the evaluator's
    Scope chains one level per enclosing (correlated) query."""

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.bindings: List[_Binding] = []
        self.parent = parent

    def find_binding(self, name: str) -> Optional[_Binding]:
        low = name.lower()
        env: Optional[_Env] = self
        while env is not None:
            for b in env.bindings:
                if b.name.lower() == low:
                    return b
            env = env.parent
        return None

    def levels(self) -> Iterator["_Env"]:
        env: Optional[_Env] = self
        while env is not None:
            yield env
            env = env.parent

    def all_binding_names(self) -> List[str]:
        return [b.name for env in self.levels() for b in env.bindings]

    def all_column_names(self) -> List[str]:
        out: List[str] = []
        for env in self.levels():
            for b in env.bindings:
                if b.columns is not None:
                    out.extend(b.columns)
        return out


class Analyzer:
    """Analyzes one parsed statement against a catalog snapshot."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.diags: List[Diagnostic] = []
        self.max_param = -1

    # -- public ------------------------------------------------------------

    def analyze(self, stmt: Any) -> Analysis:
        self.diags = []
        self.max_param = -1
        self._stmt(stmt, _Env())
        return Analysis(self.diags, self.max_param + 1)

    # -- reporting ---------------------------------------------------------

    def _error(self, code: str, message: str, suggestion: Optional[str] = None) -> None:
        self.diags.append(Diagnostic("error", code, message, suggestion))

    def _warn(self, code: str, message: str, suggestion: Optional[str] = None) -> None:
        self.diags.append(Diagnostic("warning", code, message, suggestion))

    # -- statement dispatch --------------------------------------------------

    def _stmt(self, stmt: Any, env: _Env) -> None:
        handler = getattr(self, f"_an_{type(stmt).__name__}", None)
        if handler is not None:
            handler(stmt, env)
        # Begin/Commit/Rollback and unknown nodes: nothing to check.

    def _an_Explain(self, stmt: ast.Explain, env: _Env) -> None:
        self._stmt(stmt.statement, env)

    def _an_ExplainAnalyze(self, stmt: ast.ExplainAnalyze, env: _Env) -> None:
        # EXPLAIN ANALYZE executes its statement, so the inner statement
        # gets the full strict pass (unlike CHECK below).
        self._stmt(stmt.statement, env)

    def _an_Check(self, stmt: ast.Check, env: _Env) -> None:
        # CHECK never executes its statement; it cannot fail at run time,
        # so the strict pre-execution pass has nothing to reject.
        pass

    # -- SELECT ---------------------------------------------------------------

    def _an_Select(self, stmt: ast.Select, env: _Env) -> None:
        self._select(stmt, env if (env.bindings or env.parent) else None)

    def _select(
        self, stmt: ast.Select, outer: Optional[_Env]
    ) -> Tuple[List[str], List[Optional[str]], bool]:
        """Analyze one SELECT (with compounds/order/limit).

        Returns ``(output names, output affinities, width_known)``.
        """
        env = _Env(parent=outer)
        self._bind_source(stmt.source, env)

        seen_bindings: set[str] = set()
        for b in env.bindings:
            low = b.name.lower()
            if low in seen_bindings:
                self._error(
                    "SQL011", f"duplicate table name or alias in FROM: {b.name}"
                )
            seen_bindings.add(low)

        self._expr(stmt.where, env, agg=False)
        for e in stmt.group_by:
            self._expr(e, env, agg=False)
        self._expr(stmt.having, env, agg=True)

        names: List[str] = []
        affinities: List[Optional[str]] = []
        width_known = True
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                target = item.expr.table
                matched = [
                    b
                    for b in env.bindings
                    if target is None or b.name.lower() == target.lower()
                ]
                if not matched:
                    self._error(
                        "SQL018",
                        f"no columns for {target or '*'}",
                        closest(target, [b.name for b in env.bindings])
                        if target
                        else None,
                    )
                    width_known = False
                for b in matched:
                    if b.columns is None:
                        width_known = False
                    else:
                        names.extend(b.columns)
                        affinities.extend(b.affinities or [None] * len(b.columns))
                continue
            self._expr(item.expr, env, agg=True)
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                names.append(item.expr.name)
            else:
                names.append("")
            affinities.append(self._affinity(item.expr, env))

        for _op, sub in stmt.compounds:
            sub_names, _sub_aff, sub_ok = self._select(sub, outer)
            if width_known and sub_ok and len(sub_names) != len(names):
                self._error(
                    "SQL012", "UNION selects must have the same number of columns"
                )

        self._order_by(stmt, env, names, width_known)

        # LIMIT/OFFSET are evaluated against the *enclosing* scope only.
        limit_env = outer if outer is not None else _Env()
        self._expr(stmt.limit, limit_env, agg=False)
        self._expr(stmt.offset, limit_env, agg=False)
        return names, affinities, width_known

    def _order_by(
        self, stmt: ast.Select, env: _Env, names: List[str], width_known: bool
    ) -> None:
        lowered = [n.lower() for n in names if n]
        compound = bool(stmt.compounds)
        for oi in stmt.order_by:
            e = oi.expr
            if (
                isinstance(e, ast.Literal)
                and isinstance(e.value, int)
                and not isinstance(e.value, bool)
            ):
                if width_known and not (1 <= e.value <= len(names)):
                    self._error(
                        "SQL019", f"ORDER BY position {e.value} out of range"
                    )
                continue
            if (
                isinstance(e, ast.ColumnRef)
                and e.table is None
                and e.name.lower() in lowered
            ):
                continue  # resolves against the output row
            if compound:
                self._error(
                    "SQL019",
                    "ORDER BY in compound SELECT must use output column names"
                    " or positions",
                )
                continue
            self._expr(e, env, agg=True)

    def _bind_source(self, node: Any, env: _Env) -> None:
        if node is None:
            return
        if isinstance(node, ast.TableRef):
            meta = self.catalog.tables.get(node.name.lower())
            if meta is None:
                self._error(
                    "SQL001",
                    f"no such table: {node.name}",
                    closest(node.name, [t.name for t in self.catalog.tables.values()]),
                )
                env.bindings.append(_Binding(node.binding, None))
            else:
                env.bindings.append(
                    _Binding(
                        node.binding,
                        [c.name for c in meta.columns],
                        [c.affinity for c in meta.columns],
                    )
                )
            return
        if isinstance(node, ast.SubqueryRef):
            # FROM-subqueries run uncorrelated: analyze with an empty scope.
            names, affs, ok = self._select(node.select, None)
            env.bindings.append(
                _Binding(node.alias, names if ok else None, affs if ok else None)
            )
            return
        if isinstance(node, ast.Join):
            self._bind_source(node.left, env)
            self._bind_source(node.right, env)
            # ON sees the bindings gathered so far (joins are left-deep).
            self._expr(node.condition, env, agg=False)
            return

    # -- DML --------------------------------------------------------------------

    def _an_Insert(self, stmt: ast.Insert, env: _Env) -> None:
        meta = self.catalog.tables.get(stmt.table.lower())
        if meta is None:
            self._error(
                "SQL001",
                f"no such table: {stmt.table}",
                closest(stmt.table, [t.name for t in self.catalog.tables.values()]),
            )
        width: Optional[int] = None
        positions: Optional[List[int]] = None
        if meta is not None:
            if stmt.columns:
                width = len(stmt.columns)
                positions = []
                seen: set[str] = set()
                for c in stmt.columns:
                    if not meta.has_column(c):
                        self._error(
                            "SQL002",
                            f"no such column: {meta.name}.{c}",
                            closest(c, meta.column_names),
                        )
                        positions = None
                    elif positions is not None:
                        positions.append(meta.column_index(c))
                    if c.lower() in seen:
                        self._warn(
                            "SQL014",
                            f"column {c} specified more than once in INSERT",
                        )
                        # Later duplicates are ignored by the engine; the
                        # value-to-column mapping is off, so skip SQL009.
                        positions = None
                    seen.add(c.lower())
                self._check_missing_not_null(meta, seen)
            else:
                width = len(meta.columns)
                positions = list(range(width))
        elif stmt.columns:
            width = len(stmt.columns)

        value_env = _Env()  # VALUES expressions see no columns
        for row in stmt.rows:
            for e in row:
                self._expr(e, value_env, agg=False)
            if width is not None and len(row) != width:
                self._error(
                    "SQL008",
                    f"table {stmt.table} expects {width} values, got {len(row)}",
                )
            elif meta is not None and positions is not None:
                for e, pos in zip(row, positions):
                    if isinstance(e, ast.Literal):
                        col = meta.columns[pos]
                        try:
                            coerce(e.value, col.affinity)
                        except DataError:
                            self._error(
                                "SQL009",
                                f"cannot store {e.value!r} in {col.affinity} "
                                f"column {meta.name}.{col.name}",
                            )
        if stmt.select is not None:
            sel_names, _affs, sel_ok = self._select(stmt.select, None)
            if width is not None and sel_ok and len(sel_names) != width:
                self._error(
                    "SQL008",
                    f"table {stmt.table} expects {width} values, "
                    f"got {len(sel_names)}",
                )

    def _check_missing_not_null(self, meta: Any, provided: set[str]) -> None:
        rowid_pk = meta.rowid_pk_column
        for i, col in enumerate(meta.columns):
            if (
                col.not_null
                and not col.has_default
                and i != rowid_pk
                and col.name.lower() not in provided
            ):
                self._warn(
                    "SQL020",
                    f"NOT NULL column {meta.name}.{col.name} has no default and"
                    " is not assigned by this INSERT",
                )

    def _an_Update(self, stmt: ast.Update, env: _Env) -> None:
        meta = self.catalog.tables.get(stmt.table.lower())
        table_env = _Env()
        if meta is None:
            self._error(
                "SQL001",
                f"no such table: {stmt.table}",
                closest(stmt.table, [t.name for t in self.catalog.tables.values()]),
            )
            table_env.bindings.append(_Binding(stmt.table, None))
        else:
            table_env.bindings.append(
                _Binding(
                    meta.name,
                    [c.name for c in meta.columns],
                    [c.affinity for c in meta.columns],
                )
            )
        seen: set[str] = set()
        for col, e in stmt.assignments:
            if meta is not None and not meta.has_column(col):
                self._error(
                    "SQL002",
                    f"no such column: {stmt.table}.{col}",
                    closest(col, meta.column_names),
                )
            if col.lower() in seen:
                self._warn("SQL014", f"column {col} assigned more than once in UPDATE")
            seen.add(col.lower())
            self._expr(e, table_env, agg=False)
            if meta is not None and meta.has_column(col) and isinstance(e, ast.Literal):
                cm = meta.column(col)
                try:
                    coerce(e.value, cm.affinity)
                except DataError:
                    self._error(
                        "SQL009",
                        f"cannot store {e.value!r} in {cm.affinity} "
                        f"column {meta.name}.{cm.name}",
                    )
        self._expr(stmt.where, table_env, agg=False)

    def _an_Delete(self, stmt: ast.Delete, env: _Env) -> None:
        meta = self.catalog.tables.get(stmt.table.lower())
        table_env = _Env()
        if meta is None:
            self._error(
                "SQL001",
                f"no such table: {stmt.table}",
                closest(stmt.table, [t.name for t in self.catalog.tables.values()]),
            )
            table_env.bindings.append(_Binding(stmt.table, None))
        else:
            table_env.bindings.append(
                _Binding(
                    meta.name,
                    [c.name for c in meta.columns],
                    [c.affinity for c in meta.columns],
                )
            )
        self._expr(stmt.where, table_env, agg=False)

    # -- DDL --------------------------------------------------------------------

    def _an_CreateTable(self, stmt: ast.CreateTable, env: _Env) -> None:
        if self.catalog.has_table(stmt.name):
            if not stmt.if_not_exists:
                self._error("SQL015", f"table {stmt.name} already exists")
            return
        colnames: List[str] = []
        seen: set[str] = set()
        pk = list(stmt.primary_key)
        for cd in stmt.columns:
            if cd.name.lower() in seen:
                self._error(
                    "SQL014",
                    f"duplicate column name in table {stmt.name}: {cd.name}",
                )
            seen.add(cd.name.lower())
            colnames.append(cd.name)
            if cd.default is not None and not isinstance(cd.default, ast.Literal):
                self._error("SQL016", "DEFAULT must be a literal value")
            if cd.primary_key:
                if pk and cd.name not in pk:
                    self._error("SQL014", "multiple PRIMARY KEY definitions")
                elif cd.name not in pk:
                    pk.append(cd.name)
            if cd.references is not None:
                ref_table = cd.references[0]
                if ref_table.lower() != stmt.name.lower() and not self.catalog.has_table(
                    ref_table
                ):
                    self._warn(
                        "SQL001",
                        f"foreign key references unknown table {ref_table}",
                        closest(
                            ref_table,
                            [t.name for t in self.catalog.tables.values()],
                        ),
                    )
        for group in [pk] + [list(u) for u in stmt.uniques] + [
            list(local) for local, _rt, _rc in stmt.foreign_keys
        ]:
            for c in group:
                if c.lower() not in seen:
                    self._error(
                        "SQL002",
                        f"no such column: {stmt.name}.{c}",
                        closest(c, colnames),
                    )
        for _local, ref_table, _ref_cols in stmt.foreign_keys:
            if ref_table.lower() != stmt.name.lower() and not self.catalog.has_table(
                ref_table
            ):
                self._warn(
                    "SQL001",
                    f"foreign key references unknown table {ref_table}",
                    closest(ref_table, [t.name for t in self.catalog.tables.values()]),
                )

    def _an_DropTable(self, stmt: ast.DropTable, env: _Env) -> None:
        if not self.catalog.has_table(stmt.name) and not stmt.if_exists:
            self._error(
                "SQL001",
                f"no such table: {stmt.name}",
                closest(stmt.name, [t.name for t in self.catalog.tables.values()]),
            )

    def _an_CreateIndex(self, stmt: ast.CreateIndex, env: _Env) -> None:
        if self.catalog.has_index(stmt.name):
            if not stmt.if_not_exists:
                self._error("SQL015", f"index {stmt.name} already exists")
            return
        meta = self.catalog.tables.get(stmt.table.lower())
        if meta is None:
            self._error(
                "SQL001",
                f"no such table: {stmt.table}",
                closest(stmt.table, [t.name for t in self.catalog.tables.values()]),
            )
            return
        for c in stmt.columns:
            if not meta.has_column(c):
                self._error(
                    "SQL002",
                    f"no such column: {meta.name}.{c}",
                    closest(c, meta.column_names),
                )

    def _an_DropIndex(self, stmt: ast.DropIndex, env: _Env) -> None:
        if not self.catalog.has_index(stmt.name) and not stmt.if_exists:
            self._error(
                "SQL015",
                f"no such index: {stmt.name}",
                closest(stmt.name, [i.name for i in self.catalog.indexes.values()]),
            )

    # -- expressions ---------------------------------------------------------

    def _expr(
        self,
        e: Optional[ast.Expr],
        env: _Env,
        agg: bool,
        in_agg: bool = False,
    ) -> None:
        if e is None:
            return
        t = type(e)
        if t is ast.Literal:
            return
        if t is ast.Parameter:
            if e.index > self.max_param:
                self.max_param = e.index
            return
        if t is ast.ColumnRef:
            self._column(e, env)
            return
        if t is ast.Star:
            self._error("SQL018", "'*' is not valid in this context")
            return
        if t is ast.Unary:
            self._expr(e.operand, env, agg, in_agg)
            return
        if t is ast.Binary:
            self._expr(e.left, env, agg, in_agg)
            self._expr(e.right, env, agg, in_agg)
            self._check_binary_types(e, env)
            return
        if t is ast.Like:
            self._expr(e.operand, env, agg, in_agg)
            self._expr(e.pattern, env, agg, in_agg)
            self._expr(e.escape, env, agg, in_agg)
            return
        if t is ast.Between:
            for child in (e.operand, e.low, e.high):
                self._expr(child, env, agg, in_agg)
            return
        if t is ast.InList:
            self._expr(e.operand, env, agg, in_agg)
            for item in e.items:
                self._expr(item, env, agg, in_agg)
            return
        if t is ast.InSelect:
            self._expr(e.operand, env, agg, in_agg)
            names, _affs, ok = self._select(e.select, env)
            if ok and len(names) != 1:
                self._error("SQL017", "IN subquery must return a single column")
            return
        if t is ast.Exists:
            self._select(e.select, env)
            return
        if t is ast.ScalarSelect:
            names, _affs, ok = self._select(e.select, env)
            if ok and len(names) != 1:
                self._error("SQL017", "scalar subquery must return a single column")
            return
        if t is ast.IsNull:
            self._expr(e.operand, env, agg, in_agg)
            return
        if t is ast.Case:
            self._expr(e.operand, env, agg, in_agg)
            for cond, result in e.whens:
                self._expr(cond, env, agg, in_agg)
                self._expr(result, env, agg, in_agg)
            self._expr(e.default, env, agg, in_agg)
            return
        if t is ast.Cast:
            self._expr(e.operand, env, agg, in_agg)
            return
        if t is ast.FuncCall:
            self._func_call(e, env, agg, in_agg)
            return

    def _func_call(self, e: ast.FuncCall, env: _Env, agg: bool, in_agg: bool) -> None:
        if e.name in AGGREGATE_NAMES:
            if not agg:
                self._error(
                    "SQL007",
                    f"misuse of aggregate function {e.name}() outside GROUP BY"
                    " context",
                )
            elif in_agg:
                self._error(
                    "SQL007", f"aggregate function {e.name}() cannot be nested"
                )
            if not e.star and len(e.args) != 1:
                self._error(
                    "SQL006", f"aggregate {e.name}() takes exactly one argument"
                )
            for a in e.args:
                self._expr(a, env, agg, in_agg=True)
            return
        fn = SCALAR_FUNCTIONS.get(e.name)
        if fn is None:
            self._error(
                "SQL005",
                f"no such function: {e.name}",
                closest(e.name, list(SCALAR_FUNCTIONS) + sorted(AGGREGATE_NAMES)),
            )
        else:
            lo, hi = _SCALAR_ARITY.get(e.name, (0, None))
            n = len(e.args)
            if n < lo or (hi is not None and n > hi):
                wants = str(lo) if hi == lo else f"{lo}..{hi if hi is not None else ''}"
                self._error(
                    "SQL006",
                    f"{e.name}() takes {wants} arguments, got {n}",
                )
        for a in e.args:
            self._expr(a, env, agg, in_agg)

    def _column(self, e: ast.ColumnRef, env: _Env) -> None:
        col = e.name.lower()
        if e.table is not None:
            binding = env.find_binding(e.table)
            if binding is None:
                self._error(
                    "SQL003",
                    f"no such column: {e.table}.{e.name}",
                    closest(e.table, env.all_binding_names()),
                )
                return
            if binding.columns is None or binding.has_column(col):
                return
            self._error(
                "SQL002",
                f"no such column: {e.table}.{e.name}",
                closest(e.name, binding.columns),
            )
            return
        any_opaque = False
        for level in env.levels():
            hits = 0
            for b in level.bindings:
                if b.columns is None:
                    any_opaque = True
                elif b.has_column(col):
                    hits += 1
            if hits == 1:
                return
            if hits > 1:
                # The engine resolves this silently (innermost scope wins),
                # so flag it without rejecting the statement.
                self._warn("SQL004", f"ambiguous column name: {e.name}")
                return
        if any_opaque:
            return
        self._error(
            "SQL002",
            f"no such column: {e.name}",
            closest(e.name, env.all_column_names()),
        )

    # -- type inference ------------------------------------------------------

    def _check_binary_types(self, e: ast.Binary, env: _Env) -> None:
        if e.op in _ARITH_OPS:
            for side in (e.left, e.right):
                a = self._affinity(side, env)
                if a in (TEXT, BLOB):
                    self._warn(
                        "SQL013",
                        f"arithmetic ({e.op}) on {a} operand {_describe(side)}",
                    )
            return
        if e.op in _COMPARE_OPS:
            lc = _type_class(self._affinity(e.left, env))
            rc = _type_class(self._affinity(e.right, env))
            if lc is not None and rc is not None and lc != rc:
                self._warn(
                    "SQL013",
                    f"cross-type comparison: {_describe(e.left)} is {lc} but"
                    f" {_describe(e.right)} is {rc} (never equal; ordering is"
                    " by type rank)",
                )

    def _affinity(self, e: ast.Expr, env: _Env) -> Optional[str]:
        if isinstance(e, ast.Literal):
            v = e.value
            if v is None:
                return None
            if isinstance(v, bool):
                return BOOLEAN
            if isinstance(v, int):
                return INTEGER
            if isinstance(v, float):
                return REAL
            if isinstance(v, str):
                return TEXT
            if isinstance(v, bytes):
                return BLOB
            return None
        if isinstance(e, ast.ColumnRef):
            if e.table is not None:
                b = env.find_binding(e.table)
                return b.column_affinity(e.name) if b is not None else None
            for level in env.levels():
                hits = [b for b in level.bindings if b.has_column(e.name)]
                if len(hits) == 1:
                    return hits[0].column_affinity(e.name)
                if hits:
                    return None
            return None
        if isinstance(e, ast.Cast):
            return affinity_for(e.type_name)
        if isinstance(e, ast.Unary):
            if e.op in ("-", "+"):
                a = self._affinity(e.operand, env)
                return a if a in (INTEGER, REAL, BOOLEAN) else None
            return BOOLEAN  # NOT
        if isinstance(e, ast.Binary):
            if e.op == "||":
                return TEXT
            return None
        if isinstance(e, ast.FuncCall):
            return _FUNC_AFFINITY.get(e.name)
        return None


def _describe(e: ast.Expr) -> str:
    if isinstance(e, ast.ColumnRef):
        return f"{e.table}.{e.name}" if e.table else e.name
    if isinstance(e, ast.Literal):
        return repr(e.value)
    if isinstance(e, ast.FuncCall):
        return f"{e.name}(...)"
    return type(e).__name__.lower()


def analyze(stmt: Any, catalog: Catalog) -> Analysis:
    """Convenience wrapper: analyze one parsed statement."""
    return Analyzer(catalog).analyze(stmt)
