"""Static plan verification for the minidb query engine.

The optimizer grew from "lower the AST" to a pipeline of rewrite rules
feeding two lowering backends (row Volcano operators and vectorized
``Vec*`` batch operators).  The runtime differential suite catches
miscompilations only after the fact; this module catches them *at plan
time* by walking any physical operator tree and propagating a typed
output contract — column names, affinities, nullability, ordering and
distinctness guarantees, and the batch-vs-row iteration protocol —
through every operator.

Violations raise :class:`PlanVerificationError` with a stable code:

========  ==================================================================
PLN001    unresolvable column reference (unknown binding or column)
PLN002    join/index key contract mismatch (arity, position, or affinity)
PLN003    vectorized operator without a usable kernel (None kernel,
          slot out of range, non-FullScan access path under VecScan)
PLN004    batch-vs-row protocol violation (a consumer wired to a child
          whose iteration protocol it cannot drain without an adapter)
PLN005    TopN fused over a plan-time negative LIMIT (the heap degrades
          to a full sort at run time; the optimizer must not fuse it)
PLN006    output arity drift (projection/aggregate width vs declared
          names, UNION branch widths, aggregate call-set drift)
PLN007    optimizer rule contract drift (a rewrite rule changed the
          verified schema / preserved-predicate set / ordering)
========  ==================================================================

The second half is the **optimizer-rule soundness harness**: a logical
:class:`Contract` is computed before any rule fires and re-checked after
each rewrite (and against the final physical tree) by
:func:`check_rule`.  Everything is gated behind :data:`VERIFY_PLANS`
(``MINIDB_VERIFY_PLANS`` in the environment, forced on by the test
suite, samplable in production via ``MINIDB_VERIFY_SAMPLE``) and
reported through ``minidb.verifier.*`` counters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from . import ast_nodes as ast
from .errors import InternalError
from .expressions import _children
from .planner import (
    FullScan,
    HashJoin,
    IndexEquality,
    IndexRange,
    InProbe,
    JoinNode,
    ScanNode,
    SubqueryNode,
    aggregate_calls,
    render_expr,
    split_conjuncts,
)
from .sqltypes import BOOLEAN, INTEGER, NUMERIC, REAL, TEXT, affinity_for
from ..obs.metrics import metrics as _metrics

__all__ = [
    "PlanVerificationError",
    "ColumnContract",
    "Contract",
    "VERIFY_PLANS",
    "should_verify",
    "verify_plan",
    "verify_tree",
    "logical_contract",
    "check_rule",
]


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0", "false", "False", "no")


#: Master toggle: the optimizer verifies every plan it emits when true.
#: Off by default (production pays nothing); the test suite and CI force
#: it on, and ``MINIDB_VERIFY_PLANS=1`` enables it anywhere.
VERIFY_PLANS: bool = _env_flag("MINIDB_VERIFY_PLANS")

#: Verify every Nth plan (1 = all).  Lets production sample a fraction
#: of traffic: ``MINIDB_VERIFY_PLANS=1 MINIDB_VERIFY_SAMPLE=100``.
VERIFY_SAMPLE: int = int(os.environ.get("MINIDB_VERIFY_SAMPLE", "1") or "1")

_tick = 0


def should_verify() -> bool:
    """True when the current plan should be verified (toggle + sampling)."""
    global _tick
    if not VERIFY_PLANS:
        return False
    if VERIFY_SAMPLE <= 1:
        return True
    _tick = (_tick + 1) % VERIFY_SAMPLE
    return _tick == 0


_PLANS = _metrics.counter(
    "minidb.verifier.plans", description="physical plans statically verified"
)
_VIOLATIONS = _metrics.counter(
    "minidb.verifier.violations", description="plan verification failures (PLN*)"
)
_RULE_CHECKS = _metrics.counter(
    "minidb.verifier.rule_checks",
    description="optimizer rewrite rules checked for contract drift",
)
_RULE_DRIFT = _metrics.counter(
    "minidb.verifier.rule_drift",
    description="optimizer rewrite rules that changed the plan contract",
)


def _drift_counter(rule: str) -> Any:
    return _metrics.counter(
        f"minidb.verifier.rule_drift.{rule}",
        description=f"contract drift introduced by the {rule} rule",
    )


class PlanVerificationError(InternalError):
    """A physical plan (or a rewrite rule) violated its static contract.

    Carries ``.code`` (``PLN001``..) and ``.operator`` (the ``describe()``
    string of the operator the violation was detected at, when any).
    """

    def __init__(
        self, message: str, code: str = "PLN000", operator: Optional[str] = None
    ) -> None:
        self.code = code
        self.operator = operator
        if operator:
            message = f"{message} (at operator {operator})"
        super().__init__(f"{code}: {message}")


# ---------------------------------------------------------------------------
# Contracts


@dataclass(frozen=True)
class ColumnContract:
    """One column visible through a scope binding."""

    name: str
    affinity: Optional[str]
    nullable: bool


#: Iteration protocols an operator's output can follow.  ``scope``
#: operators yield :class:`~repro.minidb.expressions.Scope` objects;
#: ``row`` operators yield ``(row, context)`` pairs; ``column-batch``
#: producers yield :class:`~repro.minidb.vector.ColumnBatch`; and
#: ``row-batch`` producers yield lists of plain row tuples (and carry
#: the per-row adapter that lets row consumers drain them).
SCOPE = "scope"
ROW = "row"
COLUMN_BATCH = "column-batch"
ROW_BATCH = "row-batch"

#: Protocols a row-consuming operator can drain via ``rows()``:
#: ``row-batch`` producers subclass the row adapter, ``column-batch``
#: producers are batch-only and raise.
_ROWISH = (ROW, ROW_BATCH)


@dataclass
class Contract:
    """The verified output contract of an operator subtree (or of a
    logical plan, for the rule-soundness harness)."""

    protocol: str
    bindings: Dict[str, List[ColumnContract]] = field(default_factory=dict)
    width: Optional[int] = None
    ordering: Tuple[bool, ...] = ()
    distinct: bool = False
    nslots: int = 0
    predicates: FrozenSet[str] = frozenset()


# ---------------------------------------------------------------------------
# Expression helpers


def _column_refs(expr: Any) -> Iterator[ast.ColumnRef]:
    """Column references in *expr*, not descending into subquery bodies
    (those are planned — and verified — separately at execution time)."""
    if isinstance(expr, ast.ColumnRef):
        yield expr
        return
    for child in _children(expr):
        yield from _column_refs(child)


def _negative_literal_limit(expr: Any) -> bool:
    """True when *expr* is a LIMIT known negative at plan time."""
    if isinstance(expr, ast.Literal):
        v = expr.value
        return isinstance(v, (int, float)) and not isinstance(v, bool) and v < 0
    if isinstance(expr, ast.Unary) and expr.op == "-":
        operand = expr.operand
        if isinstance(operand, ast.Literal):
            v = operand.value
            return isinstance(v, (int, float)) and not isinstance(v, bool) and v > 0
    return False


_NUMERICISH = frozenset({INTEGER, REAL, NUMERIC, BOOLEAN})


def _affinity_conflict(a: Optional[str], b: Optional[str]) -> bool:
    """Only a definite TEXT-vs-numeric clash counts: NUMERIC bridges
    classes and unknown affinities stay silent, so legitimate mixed
    comparisons (the analyzer's SQL013 warning territory) never trip
    the verifier."""
    if a is None or b is None:
        return False
    return (a == TEXT and b in _NUMERICISH) or (b == TEXT and a in _NUMERICISH)


def _norm_conjuncts(expr: Any) -> FrozenSet[str]:
    """Normalized conjunct renderings of a predicate: constant-folded,
    const-TRUE (and bare literal) conjuncts dropped, rendered through
    the planner's expression renderer.  Folding is applied on both sides
    of every rule check, so constant folding itself normalizes away and
    only *dropped or invented* predicates register as drift."""
    # Deferred import: the optimizer imports this module for its hooks.
    from .optimizer import _is_const_true, fold_condition

    if expr is None:
        return frozenset()
    out: Set[str] = set()
    for conjunct in split_conjuncts(fold_condition(expr)):
        if _is_const_true(conjunct) or isinstance(conjunct, ast.Literal):
            continue
        out.add(render_expr(conjunct))
    return frozenset(out)


# ---------------------------------------------------------------------------
# Physical tree verification


class _TreeVerifier:
    """Walks a physical operator tree propagating :class:`Contract`s.

    ``strict`` is False for correlated expression subqueries, whose
    column references may legally resolve in an outer scope that does
    not exist until execution time.
    """

    def __init__(self, db: Any, strict: bool = True) -> None:
        self.db = db
        self.strict = strict
        self.predicates: Set[str] = set()

    # -- errors ---------------------------------------------------------------

    def _fail(self, code: str, message: str, op: Any = None) -> None:
        name = None
        if op is not None:
            try:
                name = op.describe()
            except Exception:
                name = type(op).__name__
        raise PlanVerificationError(message, code=code, operator=name)

    # -- expression resolution ------------------------------------------------

    def _resolve_ref(
        self, ref: ast.ColumnRef, env: Dict[str, List[ColumnContract]], op: Any
    ) -> Optional[ColumnContract]:
        if ref.table is not None:
            cols = env.get(ref.table.lower())
            if cols is None:
                if self.strict:
                    self._fail(
                        "PLN001",
                        f"unresolvable column reference {ref.table}.{ref.name}: "
                        f"no binding named {ref.table!r} is visible",
                        op,
                    )
                return None
            for col in cols:
                if col.name == ref.name.lower():
                    return col
            if self.strict:
                self._fail(
                    "PLN001",
                    f"unresolvable column reference {ref.table}.{ref.name}: "
                    f"binding {ref.table!r} has no column {ref.name!r}",
                    op,
                )
            return None
        name = ref.name.lower()
        for cols in env.values():
            for col in cols:
                if col.name == name:
                    return col
        if self.strict:
            self._fail(
                "PLN001",
                f"unresolvable column reference {ref.name}: not found in any "
                f"visible binding ({', '.join(sorted(env)) or 'none'})",
                op,
            )
        return None

    def _check_expr(
        self, expr: Any, env: Dict[str, List[ColumnContract]], op: Any
    ) -> None:
        if expr is None:
            return
        for ref in _column_refs(expr):
            self._resolve_ref(ref, env, op)

    def _expr_affinity(
        self, expr: Any, env: Dict[str, List[ColumnContract]]
    ) -> Optional[str]:
        if isinstance(expr, ast.ColumnRef):
            found = None
            if expr.table is not None:
                cols = env.get(expr.table.lower())
                if cols:
                    found = next(
                        (c for c in cols if c.name == expr.name.lower()), None
                    )
            else:
                for cols in env.values():
                    found = next(
                        (c for c in cols if c.name == expr.name.lower()), None
                    )
                    if found:
                        break
            return found.affinity if found else None
        if isinstance(expr, ast.Literal):
            v = expr.value
            if isinstance(v, bool) or isinstance(v, int):
                return INTEGER
            if isinstance(v, float):
                return REAL
            if isinstance(v, str):
                return TEXT
            return None
        if isinstance(expr, ast.Cast):
            return affinity_for(expr.type_name)
        if isinstance(expr, ast.Unary) and expr.op in ("-", "+"):
            return self._expr_affinity(expr.operand, env)
        return None

    # -- access-path (scan) verification --------------------------------------

    def _table_columns(self, table: str, op: Any) -> List[ColumnContract]:
        try:
            meta = self.db.catalog.table(table)
        except Exception:
            self._fail("PLN001", f"scan of unknown table {table!r}", op)
            raise AssertionError("unreachable")  # pragma: no cover
        return [
            ColumnContract(c.name.lower(), c.affinity, not c.not_null)
            for c in meta.columns
        ]

    def _check_index_keys(
        self,
        op: Any,
        cols: List[ColumnContract],
        index_columns: List[str],
        key_exprs: List[Any],
        env: Dict[str, List[ColumnContract]],
        prefix: bool = False,
    ) -> None:
        if prefix:
            if len(key_exprs) > len(index_columns):
                self._fail(
                    "PLN002",
                    f"index prefix of {len(key_exprs)} exprs over a "
                    f"{len(index_columns)}-column index",
                    op,
                )
        elif len(key_exprs) != len(index_columns):
            self._fail(
                "PLN002",
                f"index key arity mismatch: {len(key_exprs)} exprs for a "
                f"{len(index_columns)}-column index",
                op,
            )
        for col_name, expr in zip(index_columns, key_exprs):
            self._check_key_pair(op, cols, col_name, expr, env)

    def _check_key_pair(
        self,
        op: Any,
        cols: List[ColumnContract],
        col_name: str,
        expr: Any,
        env: Dict[str, List[ColumnContract]],
    ) -> None:
        col = next((c for c in cols if c.name == col_name.lower()), None)
        if col is None:
            self._fail(
                "PLN002",
                f"index column {col_name!r} is not a table column",
                op,
            )
            return
        self._check_expr(expr, env, op)
        if _affinity_conflict(col.affinity, self._expr_affinity(expr, env)):
            self._fail(
                "PLN002",
                f"index key affinity mismatch on {col_name!r}: "
                f"{col.affinity} column probed with a "
                f"{self._expr_affinity(expr, env)} key",
                op,
            )

    def _visit_scan(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        path = op.path
        cols = self._table_columns(path.table, op)
        if isinstance(path, IndexEquality):
            self._check_index_keys(op, cols, path.index.columns, path.key_exprs, env)
        elif isinstance(path, IndexRange):
            n_prefix = len(path.prefix_exprs)
            ranged = path.low is not None or path.high is not None
            if n_prefix + (1 if ranged else 0) > len(path.index.columns):
                self._fail(
                    "PLN002",
                    f"index range binds {n_prefix} prefix columns plus a range "
                    f"bound over a {len(path.index.columns)}-column index",
                    op,
                )
            for col_name, expr in zip(path.index.columns, path.prefix_exprs):
                self._check_key_pair(op, cols, col_name, expr, env)
            if ranged and n_prefix < len(path.index.columns):
                range_col = path.index.columns[n_prefix]
                for bound in (path.low, path.high):
                    if bound is not None:
                        self._check_key_pair(op, cols, range_col, bound[1], env)
        elif isinstance(path, InProbe):
            if len(path.index.columns) != 1:
                self._fail(
                    "PLN002",
                    f"IN probe over composite index {path.index.name!r} "
                    f"({len(path.index.columns)} columns)",
                    op,
                )
            self._check_index_keys(
                op,
                cols,
                list(path.index.columns) * len(path.items),
                path.items,
                env,
                prefix=True,
            )
        elif isinstance(path, HashJoin):
            n = len(path.build_cols)
            if n == 0 or n != len(path.build_positions) or n != len(path.probe_exprs):
                self._fail(
                    "PLN002",
                    f"hash-join key arity mismatch: {n} build columns, "
                    f"{len(path.build_positions)} positions, "
                    f"{len(path.probe_exprs)} probe exprs",
                    op,
                )
            by_name = {c.name: i for i, c in enumerate(cols)}
            for name, pos, probe in zip(
                path.build_cols, path.build_positions, path.probe_exprs
            ):
                if by_name.get(name.lower()) != pos:
                    self._fail(
                        "PLN002",
                        f"hash-join build column {name!r} does not live at "
                        f"position {pos}",
                        op,
                    )
                self._check_expr(probe, env, op)
                col = cols[pos] if 0 <= pos < len(cols) else None
                if col is not None and _affinity_conflict(
                    col.affinity, self._expr_affinity(probe, env)
                ):
                    self._fail(
                        "PLN002",
                        f"hash-join key affinity mismatch on {name!r}: "
                        f"{col.affinity} build column probed with a "
                        f"{self._expr_affinity(probe, env)} expression",
                        op,
                    )
        return Contract(protocol=SCOPE, bindings={path.binding.lower(): cols})

    # -- dispatcher -----------------------------------------------------------

    def visit(self, op: Any, env: Dict[str, List[ColumnContract]]) -> Contract:
        from . import operators as ops

        if isinstance(op, ops._ScanBase):
            return self._visit_scan(op, env)
        if isinstance(op, ops.ConstantRow):
            return Contract(protocol=SCOPE)
        if isinstance(op, ops.SubqueryScan):
            return self._visit_subquery_scan(op, env)
        if isinstance(op, ops.NestedLoopJoin):
            return self._visit_nested_loop(op, env)
        if isinstance(op, ops.FilterOp):
            return self._visit_filter(op, env)
        if isinstance(op, ops.HashAggregate):
            return self._visit_aggregate(op, env)
        if isinstance(op, ops.ProjectOp):
            return self._visit_project(op, env)
        if isinstance(op, ops.DistinctOp):
            return self._visit_distinct(op, env)
        if isinstance(op, ops.UnionOp):
            return self._visit_union(op, env)
        if isinstance(op, ops.TopN):
            return self._visit_ordered(op, env, limited=True)
        if isinstance(op, ops.SortOp):
            return self._visit_ordered(op, env, limited=False)
        if isinstance(op, ops.LimitOp):
            return self._visit_limit(op, env)
        if isinstance(op, ops.VecScan):
            return self._visit_vec_scan(op, env)
        if isinstance(op, ops.VecFilter):
            return self._visit_vec_filter(op, env)
        if isinstance(op, ops.VecProject):
            return self._visit_vec_project(op, env)
        if isinstance(op, ops.VecAggregate):
            return self._visit_vec_aggregate(op, env)
        if isinstance(op, ops.VecTopN):
            return self._visit_vec_ordered(op, env, limited=True)
        if isinstance(op, ops.VecSort):
            return self._visit_vec_ordered(op, env, limited=False)
        if isinstance(op, ops.VecDistinct):
            return self._visit_vec_distinct(op, env)
        if isinstance(op, ops.VecLimit):
            return self._visit_vec_limit(op, env)
        self._fail("PLN004", f"unknown operator {type(op).__name__}", op)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- scope-protocol operators ---------------------------------------------

    def _require(self, contract: Contract, wanted: Tuple[str, ...], op: Any) -> None:
        if contract.protocol not in wanted:
            self._fail(
                "PLN004",
                f"protocol violation: consumes {' or '.join(wanted)} input "
                f"but child produces {contract.protocol}",
                op,
            )

    def _visit_subquery_scan(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        # FROM subqueries are uncorrelated by construction (their row
        # cache is shared across outer rows), so the inner env is fresh.
        sub = self.visit(op.plan, {})
        self._require(sub, _ROWISH, op)
        if sub.width is not None and sub.width != len(op.names):
            self._fail(
                "PLN006",
                f"subquery yields {sub.width} columns but the scan exposes "
                f"{len(op.names)} names",
                op,
            )
        cols = [ColumnContract(n.lower(), None, True) for n in op.names]
        return Contract(protocol=SCOPE, bindings={op.alias.lower(): cols})

    def _visit_nested_loop(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        left = self.visit(op.left, env)
        self._require(left, (SCOPE,), op)
        inner_env = dict(env)
        inner_env.update(left.bindings)
        right = self.visit(op.right, inner_env)
        self._require(right, (SCOPE,), op)
        bindings = dict(left.bindings)
        if op.kind == "LEFT":
            # The right side null-extends on no match.
            for name, cols in right.bindings.items():
                bindings[name] = [
                    ColumnContract(c.name, c.affinity, True) for c in cols
                ]
        else:
            bindings.update(right.bindings)
        if op.condition is not None:
            local = dict(env)
            local.update(bindings)
            self._check_expr(op.condition, local, op)
            self.predicates |= _norm_conjuncts(op.condition)
        return Contract(protocol=SCOPE, bindings=bindings)

    def _visit_filter(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (SCOPE,), op)
        local = dict(env)
        local.update(child.bindings)
        self._check_expr(op.condition, local, op)
        self.predicates |= _norm_conjuncts(op.condition)
        return child

    def _projection_width(
        self,
        cols: List[Any],
        local: Dict[str, List[ColumnContract]],
        op: Any,
    ) -> int:
        width = 0
        for entry in cols:
            if entry[0] == "star":
                binding, names = entry[1], entry[2]
                visible = local.get(binding.lower()) if binding else None
                if visible is None:
                    if self.strict:
                        self._fail(
                            "PLN001",
                            f"star projection over unknown binding {binding!r}",
                            op,
                        )
                else:
                    have = {c.name for c in visible}
                    for name in names:
                        if name.lower() not in have:
                            self._fail(
                                "PLN001",
                                f"star projection column {name!r} missing from "
                                f"binding {binding!r}",
                                op,
                            )
                width += len(names)
            else:
                self._check_expr(entry[1], local, op)
                width += 1
        return width

    def _visit_project(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (SCOPE,), op)
        local = dict(env)
        local.update(child.bindings)
        width = self._projection_width(op.cols, local, op)
        return Contract(protocol=ROW, bindings=child.bindings, width=width)

    def _check_call_set(self, op: Any, select: Any) -> None:
        known = {id(c) for c in op.calls}
        for call in aggregate_calls(select):
            if id(call) not in known:
                self._fail(
                    "PLN006",
                    f"aggregate call {call.name}() used by the statement is "
                    f"missing from the operator's call set "
                    f"({len(op.calls)} calls registered)",
                    op,
                )

    def _visit_aggregate(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (SCOPE,), op)
        local = dict(env)
        local.update(child.bindings)
        stmt = op.select
        for expr in stmt.group_by:
            self._check_expr(expr, local, op)
        self._check_expr(stmt.having, local, op)
        self._check_call_set(op, stmt)
        width = self._projection_width(op.cols, local, op)
        return Contract(protocol=ROW, bindings=child.bindings, width=width)

    # -- row-protocol operators -----------------------------------------------

    def _visit_distinct(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, _ROWISH, op)
        return Contract(
            protocol=ROW,
            bindings=child.bindings,
            width=child.width,
            ordering=child.ordering,
            distinct=True,
        )

    def _visit_union(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        widths: List[Optional[int]] = []
        for branch in op.inputs:
            contract = self.visit(branch, env)
            self._require(contract, _ROWISH, op)
            widths.append(contract.width)
        known = [w for w in widths if w is not None]
        if known and any(w != known[0] for w in known):
            self._fail(
                "PLN006",
                f"UNION branches yield different column counts: {widths}",
                op,
            )
        # Row contexts are erased: ORDER BY above must use names/positions.
        return Contract(
            protocol=ROW,
            width=known[0] if known else None,
            distinct=op.dedup_until == len(op.inputs) - 1,
        )

    def _check_order_terms(
        self,
        op: Any,
        order_by: List[Any],
        names: List[str],
        child: Contract,
        env: Dict[str, List[ColumnContract]],
    ) -> None:
        local = dict(env)
        local.update(child.bindings)
        for item in order_by:
            expr = item.expr
            if (
                isinstance(expr, ast.Literal)
                and isinstance(expr.value, int)
                and not isinstance(expr.value, bool)
            ):
                width = child.width if child.width is not None else len(names)
                if not 1 <= expr.value <= width:
                    self._fail(
                        "PLN001",
                        f"ORDER BY position {expr.value} out of range for a "
                        f"{width}-column output",
                        op,
                    )
                continue
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name.lower() in names
            ):
                continue  # resolves against the output row
            # Anything else re-evaluates against the row's source context.
            self._check_expr(expr, local, op)

    def _visit_ordered(
        self, op: Any, env: Dict[str, List[ColumnContract]], limited: bool
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, _ROWISH, op)
        self._check_order_terms(op, op.order_by, op.names, child, env)
        if limited and _negative_literal_limit(op.limit):
            self._fail(
                "PLN005",
                "TopN fused over a plan-time negative LIMIT (degrades to a "
                "full sort; lower to Sort+Limit instead)",
                op,
            )
        return Contract(
            protocol=ROW,
            bindings=child.bindings,
            width=child.width,
            ordering=tuple(bool(i.descending) for i in op.order_by),
            distinct=child.distinct,
        )

    def _visit_limit(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, _ROWISH, op)
        return Contract(
            protocol=ROW,
            bindings=child.bindings,
            width=child.width,
            ordering=child.ordering,
            distinct=child.distinct,
        )

    # -- vectorized operators -------------------------------------------------

    def _check_kernel(self, op: Any, kernel: Any, nslots: int, what: str) -> None:
        if kernel is None:
            self._fail("PLN003", f"{what} did not compile to a kernel", op)
            return
        slot = getattr(kernel, "slot", None)
        if slot is not None and not 0 <= slot < nslots:
            self._fail(
                "PLN003",
                f"{what} reads batch slot {slot} but the scan decodes only "
                f"{nslots} slots",
                op,
            )

    def _visit_vec_scan(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        path = op.path
        cols = self._table_columns(path.table, op)
        if not isinstance(path, FullScan):
            self._fail(
                "PLN003",
                f"VecScan over a {type(path).__name__} access path "
                f"(columnar segments only support full scans)",
                op,
            )
        for position in op.slots:
            if not 0 <= position < len(cols):
                self._fail(
                    "PLN003",
                    f"VecScan slot decodes column position {position} but the "
                    f"table has {len(cols)} columns",
                    op,
                )
        return Contract(
            protocol=COLUMN_BATCH,
            bindings={path.binding.lower(): cols},
            nslots=len(op.slots),
        )

    def _visit_vec_filter(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (COLUMN_BATCH,), op)
        local = dict(env)
        local.update(child.bindings)
        self._check_expr(op.condition, local, op)
        self._check_kernel(op, op.kernel, child.nslots, "WHERE kernel")
        self.predicates |= _norm_conjuncts(op.condition)
        return child

    def _visit_vec_project(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (COLUMN_BATCH,), op)
        for i, kernel in enumerate(op.kernels):
            self._check_kernel(op, kernel, child.nslots, f"projection kernel {i}")
        return Contract(
            protocol=ROW_BATCH, bindings=child.bindings, width=len(op.kernels)
        )

    def _visit_vec_aggregate(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (COLUMN_BATCH,), op)
        local = dict(env)
        local.update(child.bindings)
        for i, kernel in enumerate(op.key_kernels):
            self._check_kernel(op, kernel, child.nslots, f"GROUP BY kernel {i}")
        for call in op.calls:
            if call.star:
                continue
            kernel = op.arg_kernels.get(id(call))
            self._check_kernel(
                op, kernel, child.nslots, f"aggregate argument kernel {call.name}()"
            )
        for slot in op.row_slots:
            if slot is not None and not 0 <= slot < child.nslots:
                self._fail(
                    "PLN003",
                    f"representative-row slot {slot} out of range "
                    f"({child.nslots} decoded)",
                    op,
                )
        self._check_expr(op.select.having, local, op)
        self._check_call_set(op, op.select)
        width = self._projection_width(op.cols, local, op)
        return Contract(protocol=ROW, bindings=child.bindings, width=width)

    def _visit_vec_ordered(
        self, op: Any, env: Dict[str, List[ColumnContract]], limited: bool
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (COLUMN_BATCH,), op)
        for i, kernel in enumerate(op.proj_kernels):
            self._check_kernel(op, kernel, child.nslots, f"projection kernel {i}")
        ordering: List[bool] = []
        for kind, payload, descending in op.spec:
            if kind == "pos":
                if not 0 <= payload < len(op.proj_kernels):
                    self._fail(
                        "PLN003",
                        f"sort key position {payload} out of range for a "
                        f"{len(op.proj_kernels)}-column projection",
                        op,
                    )
            elif kind == "kernel":
                self._check_kernel(op, payload, child.nslots, "sort-key kernel")
            else:
                self._fail("PLN003", f"unknown sort-key kind {kind!r}", op)
            ordering.append(bool(descending))
        if limited and _negative_literal_limit(op.limit):
            self._fail(
                "PLN005",
                "VecTopN fused over a plan-time negative LIMIT (degrades to a "
                "full sort; lower to VecSort+VecLimit instead)",
                op,
            )
        return Contract(
            protocol=ROW_BATCH,
            bindings=child.bindings,
            width=len(op.proj_kernels),
            ordering=tuple(ordering),
        )

    def _visit_vec_distinct(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (ROW_BATCH,), op)
        return Contract(
            protocol=ROW_BATCH,
            bindings=child.bindings,
            width=child.width,
            ordering=child.ordering,
            distinct=True,
        )

    def _visit_vec_limit(
        self, op: Any, env: Dict[str, List[ColumnContract]]
    ) -> Contract:
        child = self.visit(op.child, env)
        self._require(child, (ROW_BATCH,), op)
        return Contract(
            protocol=ROW_BATCH,
            bindings=child.bindings,
            width=child.width,
            ordering=child.ordering,
            distinct=child.distinct,
        )


# ---------------------------------------------------------------------------
# Entry points


def verify_tree(
    db: Any,
    root: Any,
    names: Optional[List[str]] = None,
    correlated: bool = False,
) -> Contract:
    """Verify a physical operator tree; returns its output contract."""
    verifier = _TreeVerifier(db, strict=not correlated)
    contract = verifier.visit(root, {})
    if root.BATCHED and contract.protocol != ROW_BATCH:
        raise PlanVerificationError(
            f"batched root must produce row batches, not {contract.protocol}",
            code="PLN004",
            operator=root.describe(),
        )
    if contract.protocol not in _ROWISH:
        raise PlanVerificationError(
            f"plan root must yield rows, not {contract.protocol} items "
            f"(missing projection?)",
            code="PLN004",
            operator=root.describe(),
        )
    if (
        names is not None
        and contract.width is not None
        and contract.width != len(names)
    ):
        raise PlanVerificationError(
            f"plan yields {contract.width} columns but declares "
            f"{len(names)} output names",
            code="PLN006",
            operator=root.describe(),
        )
    contract.predicates = frozenset(verifier.predicates)
    return contract


def verify_plan(db: Any, plan: Any, correlated: bool = False) -> Contract:
    """Verify a :class:`~repro.minidb.optimizer.PhysicalPlan`."""
    _PLANS.inc()
    try:
        return verify_tree(db, plan.root, names=list(plan.names), correlated=correlated)
    except PlanVerificationError:
        _VIOLATIONS.inc()
        raise


# ---------------------------------------------------------------------------
# Optimizer-rule soundness harness


def logical_contract(db: Any, sp: Any) -> Contract:
    """The rule-invariant contract of a logical :class:`SelectPlan`:
    output width, normalized predicate set (WHERE + join conditions,
    including FROM-subquery plans), ordering guarantee, distinctness."""
    predicates: Set[str] = set()

    def walk_source(node: Any) -> None:
        if node is None or isinstance(node, ScanNode):
            return
        if isinstance(node, SubqueryNode):
            walk_plan(node.plan)
            return
        if isinstance(node, JoinNode):
            predicates.update(_norm_conjuncts(node.condition))
            walk_source(node.left)
            walk_source(node.right)

    def walk_plan(plan: Any) -> None:
        for branch in plan.branches:
            predicates.update(_norm_conjuncts(branch.where))
            walk_source(branch.source)

    walk_plan(sp)
    if len(sp.branches) == 1:
        distinct = bool(sp.branches[0].distinct)
    else:
        distinct = sp.dedup_until == len(sp.branches) - 1
    return Contract(
        protocol=ROW,
        width=len(sp.names),
        ordering=tuple(bool(i.descending) for i in sp.order_by),
        distinct=distinct,
        predicates=frozenset(predicates),
    )


def check_rule(rule: str, before: Contract, after: Contract) -> None:
    """Assert a rewrite rule preserved the plan contract.

    *before* is the contract computed before the rule fired; *after* is
    the re-verified contract of the rewritten plan (logical or physical).
    Equivalence means: same output width, no logical predicate dropped,
    the promised ordering unchanged, and distinctness not weakened.
    """
    _RULE_CHECKS.inc()
    problems: List[str] = []
    if (
        before.width is not None
        and after.width is not None
        and before.width != after.width
    ):
        problems.append(f"output width changed {before.width} -> {after.width}")
    dropped = before.predicates - after.predicates
    if dropped:
        problems.append(
            "predicates dropped: " + ", ".join(sorted(dropped))
        )
    if before.ordering and after.ordering != before.ordering:
        problems.append(
            f"ordering guarantee changed {before.ordering} -> {after.ordering}"
        )
    if before.distinct and not after.distinct:
        problems.append("distinctness guarantee lost")
    if problems:
        _RULE_DRIFT.inc()
        _drift_counter(rule).inc()
        _VIOLATIONS.inc()
        raise PlanVerificationError(
            f"optimizer rule {rule!r} changed the plan contract: "
            + "; ".join(problems),
            code="PLN007",
        )
