"""Line-protocol socket server exposing a shared minidb engine.

PerfTrack's deployments talked to a database *server* (Oracle/PostgreSQL);
minidb is embedded, so this module provides the thin serving layer that
closes the gap: one :class:`~repro.minidb.connection.Engine` shared by
many client sockets, each socket bound to its own session (snapshot
reads, per-table writer locks — see ``docs/minidb.md``).

The wire protocol is JSON lines (UTF-8, one object per ``\n``-terminated
line), chosen so a client fits in a few dozen lines of any language:

Request::

    {"op": "execute", "sql": "SELECT ...", "params": [1, "x"]}
    {"op": "executemany", "sql": "INSERT ...", "params": [[1], [2]]}
    {"op": "close"}

Response::

    {"ok": true, "rows": [[...], ...], "columns": ["a", "b"],
     "rowcount": 2, "lastrowid": null}
    {"ok": false, "error": "IntegrityError", "code": "SQL030",
     "message": "..."}

Errors are mapped by exception class name plus the structured ``code``
carried by minidb's error types, so clients can branch without parsing
messages.  A failed statement does not close the session: like a normal
DB-API connection, the client decides whether to roll back.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Optional

from ..obs.metrics import metrics as _M
from .connection import Engine
from .errors import Error

_SESSIONS = _M.counter("minidb.server.sessions")
_REQUESTS = _M.counter("minidb.server.requests")
_ERRORS = _M.counter("minidb.server.errors")


def _error_payload(exc: BaseException) -> dict:
    return {
        "ok": False,
        "error": type(exc).__name__,
        "code": getattr(exc, "code", None),
        "message": str(exc),
    }


class MiniDbServer:
    """A threaded JSON-lines server over one shared engine.

    ``port=0`` binds an ephemeral port (read it back from ``self.port``
    after construction), which is what the tests and the load generator
    use.  ``start()`` serves in a daemon thread; ``stop()`` closes the
    listener and every client socket.
    """

    def __init__(
        self,
        engine: Engine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._clients: set[socket.socket] = set()
        self._clients_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "MiniDbServer":
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name="minidb-server", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        while not self._shutdown.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._clients_lock:
                self._clients.add(client)
            threading.Thread(
                target=self._serve_client, args=(client,), daemon=True
            ).start()

    def stop(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._clients_lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        if self._accept_thread is not None and self._accept_thread.is_alive():
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "MiniDbServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- per-client session ------------------------------------------------------

    def _serve_client(self, sock: socket.socket) -> None:
        _SESSIONS.inc()
        session = self.engine.connect()
        try:
            reader = sock.makefile("rb")
            writer = sock.makefile("wb")
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                _REQUESTS.inc()
                try:
                    request = json.loads(line)
                except ValueError:
                    response = {
                        "ok": False,
                        "error": "ProtocolError",
                        "code": "NET001",
                        "message": "request is not valid JSON",
                    }
                else:
                    if request.get("op") == "close":
                        break
                    response = self._handle(session, request)
                if not response.get("ok"):
                    _ERRORS.inc()
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                writer.flush()
        except (OSError, ValueError):
            pass  # client went away mid-request
        finally:
            try:
                session.close()
            except Error:
                pass
            with self._clients_lock:
                self._clients.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _handle(self, session, request: dict) -> dict:
        op = request.get("op")
        sql = request.get("sql")
        params = request.get("params") or []
        if op not in ("execute", "executemany") or not isinstance(sql, str):
            return {
                "ok": False,
                "error": "ProtocolError",
                "code": "NET002",
                "message": f"unsupported request {op!r}; "
                "use execute/executemany/close with a 'sql' string",
            }
        try:
            cur = session.cursor()
            if op == "execute":
                cur.execute(sql, tuple(params))
            else:
                cur.executemany(sql, [tuple(p) for p in params])
            rows = cur.fetchall() if cur.description is not None else []
            columns = (
                [d[0] for d in cur.description]
                if cur.description is not None
                else None
            )
            return {
                "ok": True,
                "rows": [list(r) for r in rows],
                "columns": columns,
                "rowcount": cur.rowcount,
                "lastrowid": cur.lastrowid,
            }
        except Error as exc:
            return _error_payload(exc)


class MiniDbClient:
    """A minimal blocking client for :class:`MiniDbServer`.

    Raises the error class named by the server when a statement fails,
    resolved from ``repro.minidb.errors`` (falling back to
    :class:`~repro.minidb.errors.OperationalError`).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")

    def _roundtrip(self, request: dict) -> dict:
        self._writer.write(json.dumps(request).encode("utf-8") + b"\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            from . import errors as _errors

            name = response.get("error") or ""
            message = response.get("message") or "server error"
            cls = getattr(_errors, name, None)
            if not (isinstance(cls, type) and issubclass(cls, Error)) or cls in (
                _errors.SessionError,
                _errors.LockTimeoutError,
            ):
                # Unknown names and classes with structured constructors
                # travel as OperationalError, keeping the name in the text.
                if name and name != "OperationalError":
                    message = f"{name}: {message}"
                cls = _errors.OperationalError
            raise cls(message)
        return response

    def execute(self, sql: str, params: Any = ()) -> dict:
        return self._roundtrip(
            {"op": "execute", "sql": sql, "params": list(params)}
        )

    def executemany(self, sql: str, seq_of_params: Any) -> dict:
        return self._roundtrip(
            {
                "op": "executemany",
                "sql": sql,
                "params": [list(p) for p in seq_of_params],
            }
        )

    def close(self) -> None:
        try:
            self._writer.write(b'{"op": "close"}\n')
            self._writer.flush()
        except (OSError, ValueError):
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def serve(
    database: str = ":memory:",
    host: str = "127.0.0.1",
    port: int = 0,
) -> MiniDbServer:
    """Start a server over *database* and return it (non-blocking)."""
    return MiniDbServer(Engine(database), host=host, port=port).start()
