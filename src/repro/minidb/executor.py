"""Statement execution for minidb.

The executor interprets parsed statements against a
:class:`~repro.minidb.storage.Database`.  SELECT uses a pull pipeline:
source iteration (with planner-chosen access paths), WHERE filtering,
grouping/aggregation, projection, DISTINCT, UNION, ORDER BY, LIMIT.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..obs.clock import now as _now
from ..obs.metrics import metrics as _M
from . import ast_nodes as ast
from .analyzer import Analyzer
from .errors import ProgrammingError, SemanticError, closest
from .expressions import (
    AggregateAccumulator,
    Evaluator,
    Scope,
    collect_aggregates,
)
from .planner import (
    FullScan,
    HashJoin,
    IndexEquality,
    IndexRange,
    InProbe,
    choose_access_path,
    split_conjuncts,
)
from .sqltypes import coerce, sort_key
from .storage import Database

# Engine metrics (see docs/observability.md).  Instruments no-op while the
# registry is disabled, so these stay cheap on the default path; hot loops
# below still aggregate into locals and flush once per operator call.
_ROWS_SCANNED = _M.counter("minidb.rows.scanned", unit="rows")
_ROWS_RETURNED = _M.counter("minidb.rows.returned", unit="rows")
_ROWS_WRITTEN = _M.counter("minidb.rows.written", unit="rows")
_PLAN_HITS = _M.counter("minidb.plan_cache.hits")
_PLAN_MISSES = _M.counter("minidb.plan_cache.misses")
_FULL_SCANS = _M.counter("minidb.access.full_scans")
_INDEX_LOOKUPS = _M.counter("minidb.access.index_lookups")
_HJ_BUILDS = _M.counter("minidb.hash_join.builds")
_HJ_BUILD_ROWS = _M.counter("minidb.hash_join.build_rows", unit="rows")
_HJ_PROBES = _M.counter("minidb.hash_join.probes")


class _OpStats:
    """Per-operator actuals collected while EXPLAIN ANALYZE runs."""

    __slots__ = ("rows", "loops", "seconds")

    def __init__(self) -> None:
        self.rows = 0
        self.loops = 0
        self.seconds = 0.0


class Result:
    """Outcome of one executed statement."""

    __slots__ = ("description", "rows", "rowcount", "lastrowid")

    def __init__(
        self,
        description: Optional[list[tuple]] = None,
        rows: Optional[list[tuple]] = None,
        rowcount: int = -1,
        lastrowid: Optional[int] = None,
    ) -> None:
        self.description = description
        self.rows = rows or []
        self.rowcount = rowcount
        self.lastrowid = lastrowid


class Executor:
    """Executes one statement; cheap to construct per call."""

    def __init__(self, db: Database, params: Sequence[Any] = ()) -> None:
        self.db = db
        self.evaluator = Evaluator(params, subquery_runner=self._run_subquery)
        # Access paths for join probes are chosen once per (table-node,
        # bound bindings) pair, not once per outer row.
        self._path_cache: dict[tuple, object] = {}
        # Hash-join build tables, keyed by plan identity: built on the
        # first probe, reused for every subsequent outer row.
        self._hash_cache: dict[int, dict[tuple, list[int]]] = {}
        # Per-operator actuals, keyed by plan line; non-None only while an
        # EXPLAIN ANALYZE statement is executing.
        self._opstats: Optional[dict[str, _OpStats]] = None

    # -- dispatch --------------------------------------------------------------

    def execute(self, stmt) -> Result:
        name = type(stmt).__name__
        handler = getattr(self, f"_exec_{name}", None)
        if handler is None:
            raise ProgrammingError(f"cannot execute {name}")
        return handler(stmt)

    # -- DDL --------------------------------------------------------------------

    def _exec_CreateTable(self, stmt: ast.CreateTable) -> Result:
        if stmt.if_not_exists and self.db.catalog.has_table(stmt.name):
            return Result(rowcount=0)
        self.db.create_table(stmt)
        return Result(rowcount=0)

    def _exec_DropTable(self, stmt: ast.DropTable) -> Result:
        if stmt.if_exists and not self.db.catalog.has_table(stmt.name):
            return Result(rowcount=0)
        self.db.drop_table(stmt.name)
        return Result(rowcount=0)

    def _exec_CreateIndex(self, stmt: ast.CreateIndex) -> Result:
        if stmt.if_not_exists and self.db.catalog.has_index(stmt.name):
            return Result(rowcount=0)
        self.db.create_index(stmt)
        return Result(rowcount=0)

    def _exec_DropIndex(self, stmt: ast.DropIndex) -> Result:
        if stmt.if_exists and not self.db.catalog.has_index(stmt.name):
            return Result(rowcount=0)
        self.db.drop_index(stmt.name)
        return Result(rowcount=0)

    # -- DML ----------------------------------------------------------------------

    def _exec_Insert(self, stmt: ast.Insert) -> Result:
        table = self.db.table(stmt.table)
        meta = table.meta
        if stmt.columns:
            positions = [meta.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(meta.columns)))
        source_rows: list[list[Any]]
        if stmt.select is not None:
            _, sel_rows = self._run_select(stmt.select, Scope())
            source_rows = [list(r) for r in sel_rows]
        else:
            scope = Scope()
            source_rows = [
                [self.evaluator.evaluate(e, scope) for e in row] for row in stmt.rows
            ]
        lastrowid = None
        count = 0
        for values in source_rows:
            if len(values) != len(positions):
                raise ProgrammingError(
                    f"table {meta.name} expects {len(positions)} values, got {len(values)}"
                )
            full: list[Any] = []
            for i, col in enumerate(meta.columns):
                if i in positions:
                    full.append(values[positions.index(i)])
                elif col.has_default:
                    full.append(col.default)
                else:
                    full.append(None)
            full = self.db.coerce_row(meta, full)
            lastrowid = self.db.insert_row(table, full)
            count += 1
        _ROWS_WRITTEN.add(count)
        return Result(rowcount=count, lastrowid=lastrowid)

    def execute_insert_batch(self, stmt: ast.Insert, seq_of_params) -> Result:
        """Vectorized INSERT for ``executemany``: plan once, apply all rows.

        The statement is analysed once (column positions, defaults); every
        parameter row then goes straight to storage.  Constraints are still
        checked per row, but the batch is **statement-atomic**: if any row
        fails, every row already applied by this batch is undone before the
        error propagates, and nothing reaches the journal.  On success the
        whole batch becomes a single journal record (one WAL flush at
        commit regardless of batch size).
        """
        if stmt.select is not None:
            raise ProgrammingError("cannot batch-execute INSERT ... SELECT")
        db = self.db
        db.begin()  # no-op when already in a transaction
        table = db.table(stmt.table)
        meta = table.meta
        if stmt.columns:
            positions = [meta.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(meta.columns)))
        ncols = len(meta.columns)
        # Per-destination-column source: parameter position or default value.
        src_of: list[Optional[int]] = [None] * ncols
        for src_i, dest in enumerate(positions):
            src_of[dest] = src_i
        defaults = [c.default if c.has_default else None for c in meta.columns]
        for template in stmt.rows:
            if len(template) != len(positions):
                raise ProgrammingError(
                    f"table {meta.name} expects {len(positions)} values, "
                    f"got {len(template)}"
                )
        affinities = [c.affinity for c in meta.columns]
        single = stmt.rows[0] if len(stmt.rows) == 1 else None
        if single is not None and all(isinstance(e, ast.Parameter) for e in single):
            # All-placeholder template (the bulk-load shape): skip the
            # expression evaluator and map parameters straight to columns.
            param_of: list[Optional[int]] = [None] * ncols
            for src_i, dest in enumerate(positions):
                param_of[dest] = single[src_i].index
            need = max((e.index for e in single), default=-1) + 1
            fixed = [
                None if p is not None else coerce(defaults[i], affinities[i])
                for i, p in enumerate(param_of)
            ]

            def build_rows() -> Iterator[list[Any]]:
                for params in seq_of_params:
                    if len(params) < need:
                        raise ProgrammingError(
                            f"statement requires at least {need} parameters, "
                            f"{len(params)} supplied"
                        )
                    yield [
                        coerce(params[p], affinities[i]) if p is not None else fixed[i]
                        for i, p in enumerate(param_of)
                    ]

        else:
            ev = self.evaluator
            scope = Scope()

            def build_rows() -> Iterator[list[Any]]:
                for params in seq_of_params:
                    ev.params = list(params)
                    ev._inlist_cache.clear()  # parameter-dependent, per-row
                    for template in stmt.rows:
                        values = [ev.evaluate(e, scope) for e in template]
                        yield db.coerce_row(
                            meta,
                            [
                                values[src_of[i]] if src_of[i] is not None else defaults[i]
                                for i in range(ncols)
                            ],
                        )

        undo_mark = len(db._undo)
        try:
            applied, lastrowid = db.insert_rows(table, build_rows())
        except BaseException:
            # Undo only this batch's mutations, leaving the enclosing
            # transaction's earlier work intact.
            for entry in reversed(db._undo[undo_mark:]):
                db._apply_undo(entry)
            del db._undo[undo_mark:]
            raise
        if db.journal is not None and applied:
            db.journal.log_insert_batch(meta.name, applied)
        _ROWS_WRITTEN.add(len(applied))
        return Result(rowcount=len(applied), lastrowid=lastrowid)

    def _exec_Update(self, stmt: ast.Update) -> Result:
        table = self.db.table(stmt.table)
        meta = table.meta
        assignments = [(meta.column_index(c), e) for c, e in stmt.assignments]
        targets: list[tuple[int, tuple]] = []
        for rowid, row, _scope in self._scan_with_where(stmt.table, stmt.where):
            targets.append((rowid, row))
        count = 0
        for rowid, row in targets:
            scope = Scope()
            scope.bind(meta.name, meta.column_names, row)
            new_row = list(row)
            for pos, expr in assignments:
                new_row[pos] = self.evaluator.evaluate(expr, scope)
            new_row = self.db.coerce_row(meta, new_row)
            self.db.update_row(table, rowid, tuple(new_row))
            count += 1
        _ROWS_WRITTEN.add(count)
        return Result(rowcount=count)

    def _exec_Delete(self, stmt: ast.Delete) -> Result:
        table = self.db.table(stmt.table)
        targets = [rowid for rowid, _row, _s in self._scan_with_where(stmt.table, stmt.where)]
        for rowid in targets:
            self.db.delete_row(table, rowid)
        _ROWS_WRITTEN.add(len(targets))
        return Result(rowcount=len(targets))

    def _scan_with_where(
        self, table_name: str, where: Optional[ast.Expr]
    ) -> Iterator[tuple[int, tuple, Scope]]:
        """Yield (rowid, row, scope) for rows of *table_name* matching *where*."""
        table = self.db.table(table_name)
        meta = table.meta
        conjuncts = split_conjuncts(where)
        path = choose_access_path(
            self.db.indexes_on(meta.name),
            meta,
            meta.name,
            conjuncts,
            known_binding=lambda t, c: False,
        )
        if _M.enabled:
            if isinstance(path, FullScan):
                _FULL_SCANS.inc()
            else:
                _INDEX_LOOKUPS.inc()
        matches = self._where_matches(path, table, meta, where)
        if self._opstats is not None:
            yield from self._timed(matches, self._op_stat(path.describe()))
        else:
            yield from matches

    def _where_matches(
        self, path, table, meta, where: Optional[ast.Expr]
    ) -> Iterator[tuple[int, tuple, Scope]]:
        scanned = 0
        try:
            for rowid in self._rowids_for_path(path, table, Scope()):
                scanned += 1
                row = table.rows.get(rowid)
                if row is None:
                    continue
                scope = Scope()
                scope.bind(meta.name, meta.column_names, row)
                if where is None or self.evaluator.is_true(where, scope):
                    yield rowid, row, scope
        finally:
            _ROWS_SCANNED.add(scanned)

    def _rowids_for_path(self, path, table, outer_scope: Scope) -> Iterator[int]:
        if isinstance(path, FullScan):
            # list() so callers may mutate during iteration of DML targets
            yield from list(table.rows.keys())
            return
        if isinstance(path, IndexEquality):
            key = tuple(
                self.evaluator.evaluate(e, outer_scope) for e in path.key_exprs
            )
            yield from path.index.lookup(key)
            return
        if isinstance(path, InProbe):
            seen: set[int] = set()
            for item in path.items:
                key = (self.evaluator.evaluate(item, outer_scope),)
                for rowid in path.index.lookup(key):
                    if rowid not in seen:
                        seen.add(rowid)
                        yield rowid
            return
        if isinstance(path, HashJoin):
            build = self._hash_cache.get(id(path))
            if build is None:
                build = {}
                for rowid, row in table.rows.items():
                    key = tuple(row[p] for p in path.build_positions)
                    if any(v is None for v in key):
                        continue  # NULL never matches an equi-join key
                    hkey = tuple(sort_key(v) for v in key)
                    build.setdefault(hkey, []).append(rowid)
                self._hash_cache[id(path)] = build
                if _M.enabled:
                    _HJ_BUILDS.inc()
                    _HJ_BUILD_ROWS.add(len(table.rows))
            _HJ_PROBES.inc()
            probe = tuple(
                self.evaluator.evaluate(e, outer_scope) for e in path.probe_exprs
            )
            if any(v is None for v in probe):
                return
            yield from build.get(tuple(sort_key(v) for v in probe), ())
            return
        if isinstance(path, IndexRange):
            prefix = tuple(
                self.evaluator.evaluate(e, outer_scope) for e in path.prefix_exprs
            )
            if prefix:
                yield from path.index.range_scan(low=prefix, high=prefix)
                return
            low = high = None
            low_inc = high_inc = True
            if path.low is not None:
                op, expr = path.low
                low = (self.evaluator.evaluate(expr, outer_scope),)
                low_inc = op == ">="
            if path.high is not None:
                op, expr = path.high
                high = (self.evaluator.evaluate(expr, outer_scope),)
                high_inc = op == "<="
            yield from path.index.range_scan(low, high, low_inc, high_inc)
            return
        raise ProgrammingError(f"unknown access path {path!r}")  # pragma: no cover

    # -- transactions ------------------------------------------------------------------

    def _exec_Begin(self, stmt: ast.Begin) -> Result:
        self.db.begin()
        return Result(rowcount=0)

    def _exec_Commit(self, stmt: ast.Commit) -> Result:
        self.db.commit()
        return Result(rowcount=0)

    def _exec_Rollback(self, stmt: ast.Rollback) -> Result:
        self.db.rollback()
        return Result(rowcount=0)

    # -- EXPLAIN ----------------------------------------------------------------------

    def _exec_Check(self, stmt: ast.Check) -> Result:
        """``EXPLAIN [ANALYZE] CHECK <stmt>``: diagnostics, no execution."""
        analysis = Analyzer(self.db.catalog).analyze(stmt.statement)
        rows = [
            (d.severity, d.code, d.message, d.suggestion)
            for d in analysis.diagnostics
        ]
        if analysis.required_params:
            rows.append(
                (
                    "info",
                    "SQL010",
                    f"statement requires {analysis.required_params} parameters",
                    None,
                )
            )
        if not rows:
            rows = [("ok", "", "no issues found", None)]
        description = [
            (n, None, None, None, None, None, None)
            for n in ("severity", "code", "message", "suggestion")
        ]
        return Result(description=description, rows=rows, rowcount=len(rows))

    def _exec_Explain(self, stmt: ast.Explain) -> Result:
        lines = self._explain(stmt.statement)
        return Result(
            description=[("plan", None, None, None, None, None, None)],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    def _exec_ExplainAnalyze(self, stmt: ast.ExplainAnalyze) -> Result:
        """Execute the statement, then render the plan with actuals.

        Each plan line gets ``(actual rows=R loops=L time=T ms)`` where
        ``rows`` is the total rows the operator produced, ``loops`` how
        often it was (re)started — the inner side of a nested-loop join
        restarts once per outer row — and ``time`` its inclusive elapsed
        time (children included).  A final summary line reports the
        statement's own row count and total wall time.
        """
        inner = stmt.statement
        if not isinstance(inner, (ast.Select, ast.Insert, ast.Update, ast.Delete)):
            raise SemanticError(
                f"EXPLAIN ANALYZE cannot execute {type(inner).__name__.upper()}",
                code="SQL022",
                location="EXPLAIN ANALYZE",
                suggestion=(
                    "EXPLAIN ANALYZE supports SELECT, INSERT, UPDATE and "
                    "DELETE; use EXPLAIN ANALYZE CHECK <statement> for "
                    "static analysis of anything else"
                ),
            )
        self._opstats = {}
        t0 = _now()
        try:
            result = self.execute(inner)
        finally:
            stats, self._opstats = self._opstats, None
        total_ms = (_now() - t0) * 1000.0
        lines = []
        for line in self._explain(inner):
            st = stats.get(line)
            if st is not None:
                lines.append(
                    f"{line} (actual rows={st.rows} loops={st.loops} "
                    f"time={st.seconds * 1000.0:.3f} ms)"
                )
            else:
                lines.append(line)
        verb = "returned" if isinstance(inner, ast.Select) else "affected"
        count = len(result.rows) if isinstance(inner, ast.Select) else result.rowcount
        lines.append(f"ACTUAL: {count} row(s) {verb} in {total_ms:.3f} ms")
        return Result(
            description=[("plan", None, None, None, None, None, None)],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    def _op_stat(self, key: str) -> _OpStats:
        """The (created-on-demand) stats bucket for one plan line."""
        assert self._opstats is not None
        st = self._opstats.get(key)
        if st is None:
            st = self._opstats[key] = _OpStats()
        st.loops += 1
        return st

    def _timed(self, it: Iterator, st: _OpStats) -> Iterator:
        """Meter *it*: count items and attribute inter-yield time to *st*."""
        t0 = _now()
        for item in it:
            st.seconds += _now() - t0
            st.rows += 1
            yield item
            t0 = _now()
        st.seconds += _now() - t0

    def _explain(self, stmt) -> list[str]:
        if isinstance(stmt, ast.Select):
            lines: list[str] = []
            self._explain_source(stmt.source, split_conjuncts(stmt.where), lines)
            if stmt.group_by or self._has_aggregates(stmt):
                lines.append("AGGREGATE")
            if stmt.order_by:
                lines.append("ORDER BY")
            for _op, sub in stmt.compounds:
                lines.append("UNION")
                self._explain_source(sub.source, split_conjuncts(sub.where), lines)
            return lines
        if isinstance(stmt, (ast.Update, ast.Delete)):
            meta = self.db.catalog.table(stmt.table)
            path = choose_access_path(
                self.db.indexes_on(meta.name),
                meta,
                meta.name,
                split_conjuncts(stmt.where),
                known_binding=lambda t, c: False,
            )
            return [path.describe()]
        return [type(stmt).__name__.upper()]

    def _explain_source(self, source, where_conjuncts, lines: list[str], bound=()) -> None:
        if source is None:
            lines.append("CONSTANT ROW")
            return
        if isinstance(source, ast.TableRef):
            meta = self.db.catalog.table(source.name)
            path = choose_access_path(
                self.db.indexes_on(meta.name),
                meta,
                source.binding,
                where_conjuncts,
                known_binding=self._known_binding_fn(set(bound), meta, source.binding),
                table_size=len(self.db.table(source.name).rows),
            )
            lines.append(path.describe())
            return
        if isinstance(source, ast.SubqueryRef):
            lines.append(f"SUBQUERY AS {source.alias}")
            return
        if isinstance(source, ast.Join):
            self._explain_source(source.left, where_conjuncts, lines, bound)
            left_bindings = tuple(bound) + tuple(self._bindings_of(source.left))
            push = list(split_conjuncts(source.condition))
            if source.kind == "INNER":
                push += where_conjuncts
            self._explain_source(source.right, push, lines, left_bindings)
            return
        raise ProgrammingError(f"cannot explain source {source!r}")

    # -- SELECT -----------------------------------------------------------------------

    def _run_subquery(self, select: ast.Select, outer: Scope, limit_one: bool = False):
        _desc, rows = self._run_select(select, outer, limit_one=limit_one)
        return rows

    def _exec_Select(self, stmt: ast.Select) -> Result:
        description, rows = self._run_select(stmt, Scope())
        _ROWS_RETURNED.add(len(rows))
        return Result(description=description, rows=rows, rowcount=len(rows))

    def _run_select(
        self, stmt: ast.Select, outer: Scope, limit_one: bool = False
    ) -> tuple[list[tuple], list[tuple]]:
        names, rows, contexts = self._select_core(stmt, outer, limit_one=limit_one)
        for op, sub in stmt.compounds:
            sub_names, sub_rows, _ = self._select_core(sub, outer)
            if len(sub_names) != len(names):
                raise ProgrammingError("UNION selects must have the same number of columns")
            rows = rows + sub_rows
            contexts = None
            if op == "UNION":
                rows = _dedup(rows)
        if stmt.order_by:
            if self._opstats is not None:
                t0 = _now()
                rows = self._apply_order(stmt, names, rows, contexts)
                st = self._op_stat("ORDER BY")
                st.rows += len(rows)
                st.seconds += _now() - t0
            else:
                rows = self._apply_order(stmt, names, rows, contexts)
        rows = self._apply_limit(stmt, rows, outer)
        description = [(n, None, None, None, None, None, None) for n in names]
        return description, rows

    def _apply_limit(self, stmt: ast.Select, rows: list[tuple], outer: Scope) -> list[tuple]:
        if stmt.limit is None and stmt.offset is None:
            return rows
        offset = 0
        if stmt.offset is not None:
            offset = int(self.evaluator.evaluate(stmt.offset, outer) or 0)
        if stmt.limit is not None:
            limit = self.evaluator.evaluate(stmt.limit, outer)
            if limit is None or int(limit) < 0:
                return rows[offset:]
            return rows[offset : offset + int(limit)]
        return rows[offset:]

    def _has_aggregates(self, stmt: ast.Select) -> bool:
        calls: list[ast.FuncCall] = []
        for item in stmt.items:
            if not isinstance(item.expr, ast.Star):
                collect_aggregates(item.expr, calls)
        collect_aggregates(stmt.having, calls)
        for oi in stmt.order_by:
            collect_aggregates(oi.expr, calls)
        return bool(calls)

    def _select_core(
        self, stmt: ast.Select, outer: Scope, limit_one: bool = False
    ) -> tuple[list[str], list[tuple], Optional[list]]:
        """Returns (column names, rows, per-row order contexts or None)."""
        where_conjuncts = split_conjuncts(stmt.where)
        scopes = self._iter_source(stmt.source, outer, where_conjuncts)

        grouped = bool(stmt.group_by) or self._has_aggregates(stmt)
        names = self._output_names(stmt)

        if grouped:
            if self._opstats is not None:
                t0 = _now()
                rows, contexts = self._grouped_rows(stmt, scopes, outer)
                st = self._op_stat("AGGREGATE")
                st.rows += len(rows)
                st.seconds += _now() - t0
            else:
                rows, contexts = self._grouped_rows(stmt, scopes, outer)
        else:
            rows = []
            contexts = []
            for scope in scopes:
                if stmt.where is not None and not self.evaluator.is_true(stmt.where, scope):
                    continue
                rows.append(self._project(stmt, scope))
                contexts.append((scope, None))
                if (
                    limit_one
                    and not stmt.distinct
                    and not stmt.order_by
                    and stmt.limit is None
                    and not stmt.compounds
                ):
                    break
        if stmt.distinct:
            rows, contexts = _dedup_with_contexts(rows, contexts)
        return names, rows, contexts

    # -- source iteration -----------------------------------------------------------

    def _bindings_of(self, source) -> list[str]:
        if source is None:
            return []
        if isinstance(source, (ast.TableRef, ast.SubqueryRef)):
            return [source.binding]
        if isinstance(source, ast.Join):
            return self._bindings_of(source.left) + self._bindings_of(source.right)
        raise ProgrammingError(f"unknown source {source!r}")

    def _known_binding_fn(self, bound: set, meta, binding: str):
        bound_lower = {b.lower() for b in bound}

        def known(table: Optional[str], column: str) -> bool:
            if table is not None:
                return table.lower() != binding.lower() and table.lower() in bound_lower
            # Unqualified: only known when it is NOT a column of the probed
            # table (otherwise it refers to the row being scanned).
            return not meta.has_column(column)

        return known

    def _iter_source(
        self, source, outer: Scope, where_conjuncts: list[ast.Expr]
    ) -> Iterator[Scope]:
        if source is None:
            scope = outer.child()
            yield scope
            return
        yield from self._iter_node(source, outer, where_conjuncts, bound=[])

    def _iter_node(
        self, node, outer: Scope, where_conjuncts: list[ast.Expr], bound: list[str]
    ) -> Iterator[Scope]:
        if isinstance(node, ast.TableRef):
            yield from self._iter_table(node, outer, where_conjuncts, bound, parent=None)
            return
        if isinstance(node, ast.SubqueryRef):
            yield from self._iter_subquery(node, outer, parent=None)
            return
        if isinstance(node, ast.Join):
            yield from self._iter_join(node, outer, where_conjuncts, bound)
            return
        raise ProgrammingError(f"unknown source node {node!r}")

    def _iter_table(
        self,
        ref: ast.TableRef,
        outer: Scope,
        push_conjuncts: list[ast.Expr],
        bound: list[str],
        parent: Optional[Scope],
    ) -> Iterator[Scope]:
        table = self.db.table(ref.name)
        meta = table.meta
        cache_key = (id(ref), tuple(id(c) for c in push_conjuncts), tuple(bound))
        path = self._path_cache.get(cache_key)
        if path is None:
            path = choose_access_path(
                self.db.indexes_on(meta.name),
                meta,
                ref.binding,
                push_conjuncts,
                known_binding=self._known_binding_fn(set(bound), meta, ref.binding),
                table_size=len(table.rows),
            )
            self._path_cache[cache_key] = path
            _PLAN_MISSES.inc()
        else:
            _PLAN_HITS.inc()
        if _M.enabled:
            if isinstance(path, FullScan):
                _FULL_SCANS.inc()
            elif not isinstance(path, HashJoin):  # probes counted at the build
                _INDEX_LOOKUPS.inc()
        eval_scope = parent if parent is not None else outer
        scopes = self._table_scopes(path, ref, table, meta, parent, outer, eval_scope)
        if self._opstats is not None:
            yield from self._timed(scopes, self._op_stat(path.describe()))
        else:
            yield from scopes

    def _table_scopes(
        self, path, ref, table, meta, parent, outer, eval_scope
    ) -> Iterator[Scope]:
        scanned = 0
        try:
            for rowid in self._rowids_for_path(path, table, eval_scope):
                scanned += 1
                row = table.rows.get(rowid)
                if row is None:
                    continue
                scope = (parent or outer).child()
                scope.bind(ref.binding, meta.column_names, row)
                yield scope
        finally:
            _ROWS_SCANNED.add(scanned)

    def _iter_subquery(
        self, ref: ast.SubqueryRef, outer: Scope, parent: Optional[Scope]
    ) -> Iterator[Scope]:
        names = self._output_names(ref.select)
        _desc, rows = self._run_select(ref.select, Scope())
        for row in rows:
            scope = (parent or outer).child()
            scope.bind(ref.alias, names, row)
            yield scope

    def _iter_join(
        self, node: ast.Join, outer: Scope, where_conjuncts: list[ast.Expr], bound: list[str]
    ) -> Iterator[Scope]:
        left_bindings = self._bindings_of(node.left)
        for left_scope in self._iter_node(node.left, outer, where_conjuncts, bound):
            matched = False
            push = list(split_conjuncts(node.condition))
            if node.kind == "INNER":
                push = push + where_conjuncts
            for right_scope in self._iter_right(
                node.right, outer, push, bound + left_bindings, left_scope
            ):
                if node.condition is None or self.evaluator.is_true(
                    node.condition, right_scope
                ):
                    matched = True
                    yield right_scope
            if node.kind == "LEFT" and not matched:
                scope = left_scope.child()
                for binding, columns in self._null_bindings(node.right):
                    scope.bind(binding, columns, tuple([None] * len(columns)))
                yield scope

    def _iter_right(
        self,
        node,
        outer: Scope,
        push_conjuncts: list[ast.Expr],
        bound: list[str],
        parent: Scope,
    ) -> Iterator[Scope]:
        if isinstance(node, ast.TableRef):
            yield from self._iter_table(node, outer, push_conjuncts, bound, parent=parent)
            return
        if isinstance(node, ast.SubqueryRef):
            yield from self._iter_subquery(node, outer, parent=parent)
            return
        if isinstance(node, ast.Join):
            # Nested join on the right: evaluate it with parent as context.
            for scope in self._iter_join_with_parent(node, outer, push_conjuncts, bound, parent):
                yield scope
            return
        raise ProgrammingError(f"unknown join operand {node!r}")

    def _iter_join_with_parent(
        self, node: ast.Join, outer: Scope, where_conjuncts, bound, parent: Scope
    ) -> Iterator[Scope]:
        left_bindings = self._bindings_of(node.left)
        for left_scope in self._iter_right(node.left, outer, where_conjuncts, bound, parent):
            matched = False
            push = list(split_conjuncts(node.condition))
            if node.kind == "INNER":
                push = push + where_conjuncts
            for right_scope in self._iter_right(
                node.right, outer, push, bound + left_bindings, left_scope
            ):
                if node.condition is None or self.evaluator.is_true(
                    node.condition, right_scope
                ):
                    matched = True
                    yield right_scope
            if node.kind == "LEFT" and not matched:
                scope = left_scope.child()
                for binding, columns in self._null_bindings(node.right):
                    scope.bind(binding, columns, tuple([None] * len(columns)))
                yield scope

    def _null_bindings(self, node) -> list[tuple[str, list[str]]]:
        if isinstance(node, ast.TableRef):
            meta = self.db.catalog.table(node.name)
            return [(node.binding, meta.column_names)]
        if isinstance(node, ast.SubqueryRef):
            return [(node.alias, self._output_names(node.select))]
        if isinstance(node, ast.Join):
            return self._null_bindings(node.left) + self._null_bindings(node.right)
        raise ProgrammingError(f"unknown source node {node!r}")

    # -- projection --------------------------------------------------------------------

    def _output_names(self, stmt: ast.Select) -> list[str]:
        names: list[str] = []
        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                names.extend(self._star_names(stmt.source, item.expr.table))
            elif item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(_render(item.expr))
        return names

    def _star_names(self, source, table: Optional[str]) -> list[str]:
        names: list[str] = []
        for binding, columns in self._binding_columns(source):
            if table is None or binding.lower() == table.lower():
                names.extend(columns)
        if not names:
            target = table or "*"
            bindings = [b for b, _cols in self._binding_columns(source)]
            raise SemanticError(
                f"no columns for {target}",
                code="SQL018",
                suggestion=closest(table, bindings) if table else None,
            )
        return names

    def _binding_columns(self, source) -> list[tuple[str, list[str]]]:
        if source is None:
            return []
        if isinstance(source, ast.TableRef):
            meta = self.db.catalog.table(source.name)
            return [(source.binding, meta.column_names)]
        if isinstance(source, ast.SubqueryRef):
            return [(source.alias, self._output_names(source.select))]
        if isinstance(source, ast.Join):
            return self._binding_columns(source.left) + self._binding_columns(source.right)
        raise ProgrammingError(f"unknown source {source!r}")

    def _project(self, stmt: ast.Select, scope: Scope, aggregates=None) -> tuple:
        ev = self.evaluator
        old_agg = ev.aggregates
        if aggregates is not None:
            ev.aggregates = aggregates
        try:
            out: list[Any] = []
            for item in stmt.items:
                if isinstance(item.expr, ast.Star):
                    for binding, columns in self._binding_columns(stmt.source):
                        if item.expr.table is None or binding.lower() == item.expr.table.lower():
                            for col in columns:
                                out.append(scope.resolve(binding, col))
                else:
                    out.append(ev.evaluate(item.expr, scope))
            return tuple(out)
        finally:
            ev.aggregates = old_agg

    # -- grouping ---------------------------------------------------------------------

    def _grouped_rows(
        self, stmt: ast.Select, scopes: Iterator[Scope], outer: Scope
    ) -> tuple[list[tuple], list]:
        calls: list[ast.FuncCall] = []
        for item in stmt.items:
            if not isinstance(item.expr, ast.Star):
                collect_aggregates(item.expr, calls)
        collect_aggregates(stmt.having, calls)
        for oi in stmt.order_by:
            collect_aggregates(oi.expr, calls)

        groups: dict[tuple, dict] = {}
        order: list[tuple] = []
        for scope in scopes:
            if stmt.where is not None and not self.evaluator.is_true(stmt.where, scope):
                continue
            if stmt.group_by:
                key = tuple(
                    sort_key(self.evaluator.evaluate(e, scope)) for e in stmt.group_by
                )
            else:
                key = ()
            g = groups.get(key)
            if g is None:
                g = {
                    "scope": scope,
                    "accs": {id(c): AggregateAccumulator(c) for c in calls},
                }
                groups[key] = g
                order.append(key)
            for call in calls:
                acc = g["accs"][id(call)]
                if call.star:
                    acc.add(None)
                else:
                    if len(call.args) != 1:
                        raise ProgrammingError(
                            f"aggregate {call.name}() takes exactly one argument"
                        )
                    acc.add(self.evaluator.evaluate(call.args[0], scope))
        if not groups and not stmt.group_by:
            # Aggregate over an empty input still yields one row.
            empty_scope = outer.child()
            for binding, columns in self._binding_columns(stmt.source):
                empty_scope.bind(binding, columns, tuple([None] * len(columns)))
            groups[()] = {
                "scope": empty_scope,
                "accs": {id(c): AggregateAccumulator(c) for c in calls},
            }
            order.append(())
        rows: list[tuple] = []
        contexts: list = []
        for key in order:
            g = groups[key]
            agg_values = {i: acc.result() for i, acc in g["accs"].items()}
            if stmt.having is not None:
                ev = self.evaluator
                old = ev.aggregates
                ev.aggregates = agg_values
                try:
                    ok = ev.is_true(stmt.having, g["scope"])
                finally:
                    ev.aggregates = old
                if not ok:
                    continue
            rows.append(self._project(stmt, g["scope"], aggregates=agg_values))
            contexts.append((g["scope"], agg_values))
        return rows, contexts

    # -- ordering -------------------------------------------------------------------------

    def _apply_order(
        self,
        stmt: ast.Select,
        names: list[str],
        rows: list[tuple],
        contexts: Optional[list],
    ) -> list[tuple]:
        lowered = [n.lower() for n in names]

        def key_for(i: int) -> tuple:
            row = rows[i]
            parts = []
            for oi in stmt.order_by:
                value = self._order_value(oi.expr, row, lowered, contexts[i] if contexts else None)
                k = sort_key(value)
                parts.append(_Reversed(k) if oi.descending else k)
            return tuple(parts)

        indices = sorted(range(len(rows)), key=key_for)
        return [rows[i] for i in indices]

    def _order_value(self, expr: ast.Expr, row: tuple, names: list[str], context) -> Any:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int) and not isinstance(
            expr.value, bool
        ):
            pos = expr.value - 1
            if pos < 0 or pos >= len(row):
                raise ProgrammingError(f"ORDER BY position {expr.value} out of range")
            return row[pos]
        if isinstance(expr, ast.ColumnRef) and expr.table is None and expr.name.lower() in names:
            return row[names.index(expr.name.lower())]
        if context is None:
            raise ProgrammingError(
                "ORDER BY in compound SELECT must use output column names or positions"
            )
        scope, aggregates = context
        ev = self.evaluator
        old = ev.aggregates
        if aggregates is not None:
            ev.aggregates = aggregates
        try:
            return ev.evaluate(expr, scope)
        finally:
            ev.aggregates = old


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _dedup(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    out: list[tuple] = []
    for row in rows:
        key = tuple(sort_key(v) for v in row)
        if key in seen:
            continue
        seen.add(key)
        out.append(row)
    return out


def _dedup_with_contexts(rows: list[tuple], contexts: Optional[list]):
    seen: set = set()
    out_rows: list[tuple] = []
    out_ctx: Optional[list] = [] if contexts is not None else None
    for i, row in enumerate(rows):
        key = tuple(sort_key(v) for v in row)
        if key in seen:
            continue
        seen.add(key)
        out_rows.append(row)
        if out_ctx is not None and contexts is not None:
            out_ctx.append(contexts[i])
    return out_rows, out_ctx


def _render(expr: ast.Expr) -> str:
    """Readable name for an unaliased select expression."""
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.FuncCall):
        inner = "*" if expr.star else ", ".join(_render(a) for a in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Binary):
        return f"{_render(expr.left)} {expr.op} {_render(expr.right)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op} {_render(expr.operand)}"
    return type(expr).__name__.lower()
