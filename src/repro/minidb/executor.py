"""Statement execution for minidb.

After the Volcano refactor the executor is a thin dispatcher: SELECT is
planned by :mod:`repro.minidb.optimizer` into a physical operator tree
(:mod:`repro.minidb.operators`) and streamed; DDL goes to the catalog;
DML drives a scan operator over the planner-chosen access path.  EXPLAIN
and EXPLAIN ANALYZE render the real operator tree — with per-operator
``actual rows/loops/time`` hanging off the operators in the ANALYZE case.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..obs.clock import now as _now
from ..obs.metrics import metrics as _M
from . import ast_nodes as ast
from . import optimizer
from .analyzer import Analyzer
from .errors import ProgrammingError, SemanticError
from .expressions import Evaluator, Scope
from .operators import (
    ExecContext,
    ExecStats,
    FilterOp,
    Operator,
    render_plan,
    scan_for_path,
)
from .planner import choose_access_path, split_conjuncts
from .sqltypes import coerce
from .storage import Database

# Engine metrics (see docs/observability.md).  Scan/access/hash-join
# counters now live on the physical operators; the executor keeps the
# statement-level row counters.
_ROWS_RETURNED = _M.counter("minidb.rows.returned", unit="rows")
_ROWS_WRITTEN = _M.counter("minidb.rows.written", unit="rows")


class Result:
    """Outcome of one executed statement.

    SELECT results carry a ``stream`` — a generator of rows pulled from
    the operator tree on demand — and ``rowcount`` is -1 (PEP 249 allows
    this for statements whose affected-row count is unknown; sqlite3 does
    the same).  Vectorized SELECTs carry ``batches`` instead: a generator
    of row *lists* that the cursor slices for ``fetchone`` so the
    streaming contract survives batch execution.  Everything else
    materialises ``rows`` eagerly.

    ``root`` is the physical operator tree that produced the result (when
    one exists: SELECT, UPDATE, DELETE) and ``stats`` the per-execution
    :class:`~repro.minidb.operators.ExecStats`; the statement profiler
    reads both when it finalizes a statement, after any stream drains.
    """

    __slots__ = (
        "description", "rows", "rowcount", "lastrowid", "stream", "batches",
        "root", "stats",
    )

    def __init__(
        self,
        description: Optional[list[tuple]] = None,
        rows: Optional[list[tuple]] = None,
        rowcount: int = -1,
        lastrowid: Optional[int] = None,
        stream: Optional[Iterator[tuple]] = None,
        batches: Optional[Iterator[list[tuple]]] = None,
    ) -> None:
        self.description = description
        self.rows = rows or []
        self.rowcount = rowcount
        self.lastrowid = lastrowid
        self.stream = stream
        self.batches = batches
        self.root: Optional[Operator] = None
        self.stats: Optional[ExecStats] = None


class Executor:
    """Executes one statement; cheap to construct per call.

    ``plan`` is an optional pre-lowered (and already cloned)
    :class:`~repro.minidb.optimizer.PhysicalPlan` supplied by the
    connection's statement cache for top-level SELECTs.
    """

    def __init__(
        self,
        db: Database,
        params: Sequence[Any] = (),
        plan: Optional["optimizer.PhysicalPlan"] = None,
        meter: bool = False,
        txn=None,
    ) -> None:
        self.db = db
        # The session transaction mutations run under.  ``None`` in the
        # classic embedded mode (storage falls back to the database's
        # implicit transaction); engine sessions always pass theirs.
        self.txn = txn
        self.evaluator = Evaluator(params, subquery_runner=self._run_subquery)
        self.plan = plan
        self.stats = ExecStats()
        # Per-statement-execution caches shared by the main plan and every
        # expression subquery: hash-join builds and FROM-subquery rows.
        self._hash_builds: dict[int, dict] = {}
        self._subquery_rows: dict[int, list] = {}
        # Expression subqueries are planned once per execution, keyed by
        # the AST node identity — a correlated subquery re-run per outer
        # row reuses its plan (and its hash builds).
        self._subplans: dict[int, optimizer.PhysicalPlan] = {}
        # ``meter`` pre-arms per-operator actuals collection (the same
        # machinery EXPLAIN ANALYZE uses) so the flight recorder can read
        # a fully metered tree without re-executing the statement.
        self._analyze = meter
        # Operator tree of the last DML scan, for EXPLAIN ANALYZE rendering.
        self._dml_root: Optional[Operator] = None

    def _context(self, outer: Optional[Scope] = None) -> ExecContext:
        return ExecContext(
            self.db,
            self.evaluator,
            outer=outer,
            analyze=self._analyze,
            hash_builds=self._hash_builds,
            subquery_rows=self._subquery_rows,
            stats=self.stats,
        )

    # -- dispatch --------------------------------------------------------------

    def execute(self, stmt) -> Result:
        name = type(stmt).__name__
        handler = getattr(self, f"_exec_{name}", None)
        if handler is None:
            raise ProgrammingError(f"cannot execute {name}")
        result = handler(stmt)
        result.stats = self.stats
        if result.root is None:
            result.root = self._dml_root
        return result

    # -- DDL --------------------------------------------------------------------

    def _exec_CreateTable(self, stmt: ast.CreateTable) -> Result:
        if stmt.if_not_exists and self.db.catalog.has_table(stmt.name):
            return Result(rowcount=0)
        self.db.create_table(stmt, txn=self.txn)
        return Result(rowcount=0)

    def _exec_DropTable(self, stmt: ast.DropTable) -> Result:
        if stmt.if_exists and not self.db.catalog.has_table(stmt.name):
            return Result(rowcount=0)
        self.db.drop_table(stmt.name, txn=self.txn)
        return Result(rowcount=0)

    def _exec_CreateIndex(self, stmt: ast.CreateIndex) -> Result:
        if stmt.if_not_exists and self.db.catalog.has_index(stmt.name):
            return Result(rowcount=0)
        self.db.create_index(stmt, txn=self.txn)
        return Result(rowcount=0)

    def _exec_DropIndex(self, stmt: ast.DropIndex) -> Result:
        if stmt.if_exists and not self.db.catalog.has_index(stmt.name):
            return Result(rowcount=0)
        self.db.drop_index(stmt.name, txn=self.txn)
        return Result(rowcount=0)

    # -- SELECT -----------------------------------------------------------------

    def _plan_for_select(self, stmt: ast.Select) -> "optimizer.PhysicalPlan":
        if self.plan is not None:
            return self.plan
        return optimizer.plan_select(self.db, stmt)

    def _exec_Select(self, stmt: ast.Select) -> Result:
        plan = self._plan_for_select(stmt)
        if plan.root.BATCHED:
            result = Result(
                description=plan.description,
                rowcount=-1,
                batches=self._stream_batches(plan.root),
            )
        else:
            result = Result(
                description=plan.description,
                rowcount=-1,
                stream=self._stream_rows(plan.root),
            )
        result.root = plan.root
        return result

    def _stream_rows(self, root: Operator) -> Iterator[tuple]:
        returned = 0
        try:
            for row, _context in root.rows(self._context()):
                returned += 1
                yield row
        finally:
            _ROWS_RETURNED.add(returned)

    def _stream_batches(self, root: Operator) -> Iterator[list[tuple]]:
        returned = 0
        try:
            for batch in root.batches(self._context()):
                returned += len(batch)
                yield batch
        finally:
            _ROWS_RETURNED.add(returned)

    def _run_subquery(
        self, select: ast.Select, outer: Scope, limit_one: bool = False
    ) -> list[tuple]:
        """Expression-subquery runner handed to the :class:`Evaluator`.

        ``limit_one`` (EXISTS) pulls a single row and closes the pipeline;
        the streaming operators make that an O(first match) probe.
        """
        plan = self._subplans.get(id(select))
        if plan is None:
            # correlated=True: the subquery may reference outer bindings
            # the static verifier cannot see at plan time.
            plan = optimizer.plan_select(self.db, select, correlated=True)
            self._subplans[id(select)] = plan
        rows: list[tuple] = []
        it = plan.root.rows(self._context(outer))
        try:
            for row, _context in it:
                rows.append(row)
                if limit_one:
                    break
        finally:
            it.close()
        return rows

    def _select_rows(self, select: ast.Select) -> list[tuple]:
        return self._run_subquery(select, Scope())

    # -- DML ----------------------------------------------------------------------

    def _exec_Insert(self, stmt: ast.Insert) -> Result:
        table = self.db.table(stmt.table)
        meta = table.meta
        self.db.lock_for_write(self.txn, meta)
        if stmt.columns:
            positions = [meta.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(meta.columns)))
        source_rows: list[list[Any]]
        if stmt.select is not None:
            source_rows = [list(r) for r in self._select_rows(stmt.select)]
        else:
            scope = Scope()
            source_rows = [
                [self.evaluator.evaluate(e, scope) for e in row] for row in stmt.rows
            ]
        lastrowid = None
        count = 0
        for values in source_rows:
            if len(values) != len(positions):
                raise ProgrammingError(
                    f"table {meta.name} expects {len(positions)} values, got {len(values)}"
                )
            full: list[Any] = []
            for i, col in enumerate(meta.columns):
                if i in positions:
                    full.append(values[positions.index(i)])
                elif col.has_default:
                    full.append(col.default)
                else:
                    full.append(None)
            full = self.db.coerce_row(meta, full)
            lastrowid = self.db.insert_row(table, full, txn=self.txn)
            count += 1
        _ROWS_WRITTEN.add(count)
        return Result(rowcount=count, lastrowid=lastrowid)

    def execute_insert_batch(self, stmt: ast.Insert, seq_of_params) -> Result:
        """Vectorized INSERT for ``executemany``: plan once, apply all rows.

        The statement is analysed once (column positions, defaults); every
        parameter row then goes straight to storage.  Constraints are still
        checked per row, but the batch is **statement-atomic**: if any row
        fails, every row already applied by this batch is undone before the
        error propagates, and nothing reaches the journal.  On success the
        whole batch becomes a single journal record (one WAL flush at
        commit regardless of batch size).
        """
        if stmt.select is not None:
            raise ProgrammingError("cannot batch-execute INSERT ... SELECT")
        db = self.db
        txn = self.txn
        if txn is None:
            txn = db.begin()  # joins the open implicit transaction
        table = db.table(stmt.table)
        meta = table.meta
        db.lock_for_write(txn, meta)
        if stmt.columns:
            positions = [meta.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(len(meta.columns)))
        ncols = len(meta.columns)
        # Per-destination-column source: parameter position or default value.
        src_of: list[Optional[int]] = [None] * ncols
        for src_i, dest in enumerate(positions):
            src_of[dest] = src_i
        defaults = [c.default if c.has_default else None for c in meta.columns]
        for template in stmt.rows:
            if len(template) != len(positions):
                raise ProgrammingError(
                    f"table {meta.name} expects {len(positions)} values, "
                    f"got {len(template)}"
                )
        affinities = [c.affinity for c in meta.columns]
        single = stmt.rows[0] if len(stmt.rows) == 1 else None
        if single is not None and all(isinstance(e, ast.Parameter) for e in single):
            # All-placeholder template (the bulk-load shape): skip the
            # expression evaluator and map parameters straight to columns.
            param_of: list[Optional[int]] = [None] * ncols
            for src_i, dest in enumerate(positions):
                param_of[dest] = single[src_i].index
            need = max((e.index for e in single), default=-1) + 1
            fixed = [
                None if p is not None else coerce(defaults[i], affinities[i])
                for i, p in enumerate(param_of)
            ]

            def build_rows() -> Iterator[list[Any]]:
                for params in seq_of_params:
                    if len(params) < need:
                        raise ProgrammingError(
                            f"statement requires at least {need} parameters, "
                            f"{len(params)} supplied"
                        )
                    yield [
                        coerce(params[p], affinities[i]) if p is not None else fixed[i]
                        for i, p in enumerate(param_of)
                    ]

        else:
            ev = self.evaluator
            scope = Scope()

            def build_rows() -> Iterator[list[Any]]:
                for params in seq_of_params:
                    ev.params = list(params)
                    ev._inlist_cache.clear()  # parameter-dependent, per-row
                    for template in stmt.rows:
                        values = [ev.evaluate(e, scope) for e in template]
                        yield db.coerce_row(
                            meta,
                            [
                                values[src_of[i]] if src_of[i] is not None else defaults[i]
                                for i in range(ncols)
                            ],
                        )

        undo_mark = len(txn.undo)
        try:
            applied, lastrowid = db.insert_rows(table, build_rows(), txn=txn)
        except BaseException:
            # Undo only this batch's mutations, leaving the enclosing
            # transaction's earlier work intact.
            for entry in reversed(txn.undo[undo_mark:]):
                db._apply_undo(entry)
            del txn.undo[undo_mark:]
            raise
        if db.journal is not None and applied:
            txn.log(("insert_batch", meta.name, applied))
        _ROWS_WRITTEN.add(len(applied))
        return Result(rowcount=len(applied), lastrowid=lastrowid)

    def _exec_Update(self, stmt: ast.Update) -> Result:
        table = self.db.table(stmt.table)
        meta = table.meta
        # Lock before the target scan so the rows we collect cannot move
        # under a concurrent writer between scan and mutation.
        self.db.lock_for_write(self.txn, meta)
        assignments = [(meta.column_index(c), e) for c, e in stmt.assignments]
        targets: list[tuple[int, tuple]] = []
        for rowid, row, _scope in self._scan_with_where(stmt.table, stmt.where):
            targets.append((rowid, row))
        count = 0
        for rowid, row in targets:
            scope = Scope()
            scope.bind(meta.name, meta.column_names, row)
            new_row = list(row)
            for pos, expr in assignments:
                new_row[pos] = self.evaluator.evaluate(expr, scope)
            new_row = self.db.coerce_row(meta, new_row)
            self.db.update_row(table, rowid, tuple(new_row), txn=self.txn)
            count += 1
        _ROWS_WRITTEN.add(count)
        return Result(rowcount=count)

    def _exec_Delete(self, stmt: ast.Delete) -> Result:
        table = self.db.table(stmt.table)
        # children=True: the dangling-reference check scans child tables.
        self.db.lock_for_write(self.txn, table.meta, children=True)
        targets = [rowid for rowid, _row, _s in self._scan_with_where(stmt.table, stmt.where)]
        for rowid in targets:
            self.db.delete_row(table, rowid, txn=self.txn)
        _ROWS_WRITTEN.add(len(targets))
        return Result(rowcount=len(targets))

    def _dml_tree(self, table_name: str, where: Optional[ast.Expr]) -> Operator:
        """The scan(+filter) operator tree driving one UPDATE/DELETE."""
        meta = self.db.table(table_name).meta
        path = choose_access_path(
            self.db.indexes_on(meta.name),
            meta,
            meta.name,
            split_conjuncts(where),
            known_binding=lambda t, c: False,
        )
        root: Operator = scan_for_path(path)
        if where is not None:
            root = FilterOp(where, root)
        return root

    def _scan_with_where(
        self, table_name: str, where: Optional[ast.Expr]
    ) -> Iterator[tuple[int, tuple, Scope]]:
        """Yield (rowid, row, scope) for rows of *table_name* matching *where*."""
        meta = self.db.table(table_name).meta
        root = self._dml_tree(table_name, where)
        self._dml_root = root
        binding = meta.name.lower()
        for scope in root.rows(self._context()):
            _cols, row = scope.bindings[binding]
            yield scope.rowid, row, scope

    # -- transactions ------------------------------------------------------------------

    def _exec_Begin(self, stmt: ast.Begin) -> Result:
        self.db.begin()
        return Result(rowcount=0)

    def _exec_Commit(self, stmt: ast.Commit) -> Result:
        self.db.commit()
        return Result(rowcount=0)

    def _exec_Rollback(self, stmt: ast.Rollback) -> Result:
        self.db.rollback()
        return Result(rowcount=0)

    # -- EXPLAIN ----------------------------------------------------------------------

    def _exec_Check(self, stmt: ast.Check) -> Result:
        """``EXPLAIN [ANALYZE] CHECK <stmt>``: diagnostics, no execution."""
        analysis = Analyzer(self.db.catalog).analyze(stmt.statement)
        rows = [
            (d.severity, d.code, d.message, d.suggestion)
            for d in analysis.diagnostics
        ]
        if analysis.required_params:
            rows.append(
                (
                    "info",
                    "SQL010",
                    f"statement requires {analysis.required_params} parameters",
                    None,
                )
            )
        if not rows:
            rows = [("ok", "", "no issues found", None)]
        description = [
            (n, None, None, None, None, None, None)
            for n in ("severity", "code", "message", "suggestion")
        ]
        return Result(description=description, rows=rows, rowcount=len(rows))

    def _exec_Explain(self, stmt: ast.Explain) -> Result:
        lines = self._explain_lines(stmt.statement)
        return Result(
            description=[("plan", None, None, None, None, None, None)],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    def _explain_lines(self, stmt) -> list[str]:
        if isinstance(stmt, ast.Select):
            plan = optimizer.plan_select(self.db, stmt)
            return render_plan(plan.root)
        if isinstance(stmt, (ast.Update, ast.Delete)):
            return render_plan(self._dml_tree(stmt.table, stmt.where))
        return [type(stmt).__name__.upper()]

    def _exec_ExplainAnalyze(self, stmt: ast.ExplainAnalyze) -> Result:
        """Execute the statement, then render the operator tree with actuals.

        Each operator line gets ``(actual rows=R loops=L time=T ms)`` where
        ``rows`` is the total rows the operator produced, ``loops`` how
        often it was (re)opened — the inner side of a nested-loop join
        restarts once per outer row — and ``time`` its inclusive elapsed
        time (children included).  A final summary line reports the
        statement's own row count and total wall time.
        """
        inner = stmt.statement
        if not isinstance(inner, (ast.Select, ast.Insert, ast.Update, ast.Delete)):
            raise SemanticError(
                f"EXPLAIN ANALYZE cannot execute {type(inner).__name__.upper()}",
                code="SQL022",
                location="EXPLAIN ANALYZE",
                suggestion=(
                    "EXPLAIN ANALYZE supports SELECT, INSERT, UPDATE and "
                    "DELETE; use EXPLAIN ANALYZE CHECK <statement> for "
                    "static analysis of anything else"
                ),
            )
        self._analyze = True
        self._dml_root = None
        root: Optional[Operator] = None
        t0 = _now()
        try:
            if isinstance(inner, ast.Select):
                plan = self._plan_for_select(inner)
                count = 0
                if plan.root.BATCHED:
                    for batch in self._stream_batches(plan.root):
                        count += len(batch)
                else:
                    for _row in self._stream_rows(plan.root):
                        count += 1
                root = plan.root
                verb = "returned"
            else:
                result = self.execute(inner)
                root = self._dml_root  # None for INSERT
                count = result.rowcount
                verb = "affected"
        finally:
            self._analyze = False
        total_ms = (_now() - t0) * 1000.0
        if root is not None:
            lines = render_plan(root, analyze=True)
        else:
            lines = [type(inner).__name__.upper()]
        lines.append(f"ACTUAL: {count} row(s) {verb} in {total_ms:.3f} ms")
        return Result(
            description=[("plan", None, None, None, None, None, None)],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )
