"""Rule-based optimizer for minidb.

Sits between the logical plan (:mod:`repro.minidb.planner`) and the
physical operators (:mod:`repro.minidb.operators`):

1. **Constant folding** — literal-only subtrees of WHERE and join
   conditions are evaluated once at plan time (with the same evaluator the
   engine uses at runtime, so NULL/division/type semantics are identical).
   Only new nodes are built; the analyzed AST is never mutated.
2. **Predicate pushdown** — AND-ed conjuncts are threaded down the join
   tree to each scan so :func:`~repro.minidb.planner.choose_access_path`
   can turn them into index probes or hash-join keys.  Pushdown is
   *access-only*: the full WHERE / join condition is still re-evaluated by
   FilterOp / NestedLoopJoin above, so paths may safely return supersets.
3. **Join-input reordering** — an INNER join of two base tables swaps its
   inputs when both orientations admit a hash join and the swap makes the
   *smaller* table the build side (bounding hash-map memory).
4. **TopN fusion** — ``ORDER BY ... LIMIT k`` becomes a bounded-heap TopN
   operator instead of a full sort followed by a limit.

Each rule has a module-level toggle so tests can verify that disabling any
rule never changes result multisets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from . import ast_nodes as ast
from .errors import ProgrammingError
from .expressions import Evaluator, Scope
from .operators import (
    ConstantRow,
    DistinctOp,
    FilterOp,
    HashAggregate,
    LimitOp,
    NestedLoopJoin,
    Operator,
    ProjectOp,
    SortOp,
    SubqueryScan,
    TopN,
    UnionOp,
    VecAggregate,
    VecDistinct,
    VecFilter,
    VecLimit,
    VecProject,
    VecScan,
    VecSort,
    VecTopN,
    scan_for_path,
)
from .planner import (
    BranchPlan,
    FullScan,
    HashJoin as HashJoinPath,
    JoinNode,
    ScanNode,
    SelectPlan,
    SubqueryNode,
    aggregate_calls,
    binding_columns,
    build_logical_plan,
    choose_access_path,
    split_conjuncts,
    star_names,
)
from .vector import KernelCompiler
from . import verifier
from .verifier import _negative_literal_limit

# Rule toggles — flipped by tests to prove rules are behavior-preserving.
ENABLE_CONSTANT_FOLDING = True
ENABLE_PUSHDOWN = True
ENABLE_JOIN_REORDER = True
ENABLE_TOPN = True

# Batch-at-a-time lowering: full scans of tables at or above
# VECTOR_MIN_ROWS rows execute over columnar segments when every needed
# expression compiles to a vector kernel.  The threshold is a power of
# two so crossing it lands on a plan-cache size-bucket boundary and
# cached row plans are re-planned.
ENABLE_VECTORIZATION = True
VECTOR_MIN_ROWS = 2048


@dataclass
class PhysicalPlan:
    """A lowered operator tree plus its statement-level output shape."""

    root: Operator
    names: list[str]
    description: list[tuple]
    #: tables whose row counts the access-path choices depended on — the
    #: statement cache keys plan reuse on their size buckets.
    tables: tuple[str, ...]

    def clone(self) -> "PhysicalPlan":
        """A fresh, stateless operator tree for one execution.

        Cached plans must be cloned per execution: two cursors may stream
        the same statement concurrently, and operator instances hold
        open-generator state.
        """
        return PhysicalPlan(self.root.clone(), self.names, self.description, self.tables)


def plan_select(db, stmt: ast.Select, correlated: bool = False) -> PhysicalPlan:
    """Logical plan → optimizer rules → physical operator tree.

    With :data:`~repro.minidb.verifier.VERIFY_PLANS` on, the contract of
    the plan (output width, preserved predicates, ordering, distinctness)
    is captured before any rule fires and re-checked after each rewrite
    and against the final physical tree — a broken rule raises
    ``PLN007`` at plan time instead of corrupting results at run time.
    *correlated* marks expression subqueries, whose column references may
    legally resolve in an outer scope the verifier cannot see.
    """
    logical = build_logical_plan(db, stmt)
    base = verifier.logical_contract(db, logical) if verifier.should_verify() else None
    if ENABLE_CONSTANT_FOLDING:
        _fold_plan(logical)
        if base is not None:
            verifier.check_rule(
                "constant_folding", base, verifier.logical_contract(db, logical)
            )
    _reorder_plan(db, logical)
    if base is not None:
        verifier.check_rule(
            "join_reorder", base, verifier.logical_contract(db, logical)
        )
    root = _lower_vectorized(db, logical) if ENABLE_VECTORIZATION else None
    vectorized = root is not None
    if root is None:
        root = lower_select_plan(db, logical)
    description = [(n, None, None, None, None, None, None) for n in logical.names]
    plan = PhysicalPlan(
        root=root,
        names=logical.names,
        description=description,
        tables=tuple(sorted(_plan_tables(logical))),
    )
    if base is not None:
        # Lowering subsumes predicate pushdown (access-path selection) and
        # TopN fusion; verifying the physical tree checks those rules too.
        physical = verifier.verify_plan(db, plan, correlated=correlated)
        verifier.check_rule("vectorize" if vectorized else "lowering", base, physical)
    return plan


def _plan_tables(sp: SelectPlan, out: Optional[set] = None) -> set:
    if out is None:
        out = set()
    for branch in sp.branches:
        _source_tables(branch.source, out)
    return out


def _source_tables(node, out: set) -> None:
    if node is None:
        return
    if isinstance(node, ScanNode):
        out.add(node.ref.name.lower())
        return
    if isinstance(node, SubqueryNode):
        _plan_tables(node.plan, out)
        return
    if isinstance(node, JoinNode):
        _source_tables(node.left, out)
        _source_tables(node.right, out)
        return
    raise ProgrammingError(f"unknown logical node {node!r}")


# ---------------------------------------------------------------------------
# Rule: constant folding.

_FOLD_EVALUATOR = Evaluator((), None)
_EMPTY_SCOPE = Scope()


def _is_literal_only(expr: ast.Expr) -> bool:
    """True when *expr* depends on nothing per-row or per-execution.

    Parameters are excluded — plans are cached across executions with
    different bindings — as are column references and subqueries.
    """
    if isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, ast.Unary):
        return _is_literal_only(expr.operand)
    if isinstance(expr, ast.Binary):
        return _is_literal_only(expr.left) and _is_literal_only(expr.right)
    if isinstance(expr, ast.Cast):
        return _is_literal_only(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _is_literal_only(expr.operand)
    if isinstance(expr, ast.Like):
        parts = [expr.operand, expr.pattern]
        if expr.escape is not None:
            parts.append(expr.escape)
        return all(_is_literal_only(p) for p in parts)
    if isinstance(expr, ast.Between):
        return all(_is_literal_only(p) for p in (expr.operand, expr.low, expr.high))
    if isinstance(expr, ast.InList):
        return _is_literal_only(expr.operand) and all(
            _is_literal_only(i) for i in expr.items
        )
    if isinstance(expr, ast.FuncCall):
        return (
            not expr.star
            and not expr.distinct
            and all(_is_literal_only(a) for a in expr.args)
        )
    if isinstance(expr, ast.Case):
        parts = [expr.operand] if expr.operand is not None else []
        for c, r in expr.whens:
            parts.extend([c, r])
        if expr.default is not None:
            parts.append(expr.default)
        return all(_is_literal_only(p) for p in parts)
    return False


def fold_condition(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
    """Fold literal-only subtrees of a WHERE/ON tree into Literal nodes.

    Evaluation goes through the runtime :class:`Evaluator`, so folded
    semantics (NULL propagation, division by zero → NULL, type coercions)
    match row-at-a-time evaluation exactly.  Anything that raises is left
    unfolded so the error still surfaces at execution time.  The input
    tree is never mutated — rewritten spines are new nodes.
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Literal):
        return expr
    if _is_literal_only(expr):
        try:
            value = _FOLD_EVALUATOR.evaluate(expr, _EMPTY_SCOPE)
        except Exception:
            return expr
        return ast.Literal(value)
    if isinstance(expr, ast.Binary):
        left = fold_condition(expr.left)
        right = fold_condition(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return ast.Binary(expr.op, left, right)
    if isinstance(expr, ast.Unary):
        operand = fold_condition(expr.operand)
        if operand is expr.operand:
            return expr
        return ast.Unary(expr.op, operand)
    return expr


def _fold_plan(sp: SelectPlan) -> None:
    for branch in sp.branches:
        branch.where = fold_condition(branch.where)
        _fold_source(branch.source)


def _fold_source(node) -> None:
    if isinstance(node, JoinNode):
        node.condition = fold_condition(node.condition)
        _fold_source(node.left)
        _fold_source(node.right)
    elif isinstance(node, SubqueryNode):
        _fold_plan(node.plan)


def _is_const_true(expr: Optional[ast.Expr]) -> bool:
    return (
        isinstance(expr, ast.Literal)
        and expr.value is not None
        and bool(expr.value)
    )


# ---------------------------------------------------------------------------
# Rule: join-input reordering (build the smaller side of a hash join).


def _known_binding_fn(bound: set, meta, binding: str):
    bound_lower = {b.lower() for b in bound}

    def known(table: Optional[str], column: str) -> bool:
        if table is not None:
            return table.lower() != binding.lower() and table.lower() in bound_lower
        # Unqualified: only known when it is NOT a column of the probed
        # table (otherwise it refers to the row being scanned).
        return not meta.has_column(column)

    return known


def _reorder_plan(db, sp: SelectPlan) -> None:
    for branch in sp.branches:
        _reorder_source(db, branch.source, split_conjuncts(branch.where))


def _reorder_source(db, node, push: list) -> None:
    if isinstance(node, SubqueryNode):
        _reorder_plan(db, node.plan)
        return
    if not isinstance(node, JoinNode):
        return
    _reorder_source(db, node.left, push)
    right_push = list(split_conjuncts(node.condition))
    if node.kind == "INNER":
        right_push = right_push + push
    _reorder_source(db, node.right, right_push)
    if (
        ENABLE_JOIN_REORDER
        and node.kind == "INNER"
        and node.condition is not None
        and isinstance(node.left, ScanNode)
        and isinstance(node.right, ScanNode)
    ):
        _maybe_swap_inputs(db, node, right_push)


def _maybe_swap_inputs(db, node: JoinNode, conjuncts: list) -> None:
    """Swap an INNER join's inputs when that shrinks the hash-build side.

    Both orientations must independently choose a hash join — if the
    current one uses an index, or the swapped probe side is too small to
    amortise a build, the original order stands (and with it the original
    row order for index/scan plans).
    """
    left, right = node.left, node.right
    lsize = len(db.table(left.ref.name).rows)
    rsize = len(db.table(right.ref.name).rows)
    if lsize >= rsize:
        return  # the build side is already the smaller input
    rmeta = db.table(right.ref.name).meta
    orig = choose_access_path(
        db.indexes_on(rmeta.name),
        rmeta,
        right.ref.binding,
        conjuncts,
        known_binding=_known_binding_fn({left.ref.binding}, rmeta, right.ref.binding),
        table_size=rsize,
    )
    if not isinstance(orig, HashJoinPath):
        return
    lmeta = db.table(left.ref.name).meta
    swapped = choose_access_path(
        db.indexes_on(lmeta.name),
        lmeta,
        left.ref.binding,
        conjuncts,
        known_binding=_known_binding_fn({right.ref.binding}, lmeta, left.ref.binding),
        table_size=lsize,
    )
    if not isinstance(swapped, HashJoinPath):
        return
    node.left, node.right = right, left


# ---------------------------------------------------------------------------
# Lowering: logical nodes → physical operators.


def _node_bindings(node) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ScanNode):
        return [node.ref.binding]
    if isinstance(node, SubqueryNode):
        return [node.ref.alias]
    if isinstance(node, JoinNode):
        return _node_bindings(node.left) + _node_bindings(node.right)
    raise ProgrammingError(f"unknown logical node {node!r}")


def _node_schemas(db, node) -> list[tuple[str, list[str]]]:
    """``(binding, columns)`` pairs for LEFT-join null extension."""
    if isinstance(node, ScanNode):
        return [(node.ref.binding, db.catalog.table(node.ref.name).column_names)]
    if isinstance(node, SubqueryNode):
        return [(node.ref.alias, node.plan.names)]
    if isinstance(node, JoinNode):
        return _node_schemas(db, node.left) + _node_schemas(db, node.right)
    raise ProgrammingError(f"unknown logical node {node!r}")


def _lower_source(db, node, push: list, bound: list[str]) -> Operator:
    if node is None:
        return ConstantRow()
    if isinstance(node, ScanNode):
        ref = node.ref
        table = db.table(ref.name)
        meta = table.meta
        conjuncts = push if ENABLE_PUSHDOWN else []
        path = choose_access_path(
            db.indexes_on(meta.name),
            meta,
            ref.binding,
            conjuncts,
            known_binding=_known_binding_fn(set(bound), meta, ref.binding),
            table_size=len(table.rows),
        )
        op = scan_for_path(path)
        op.est_rows = node.est_rows
        return op
    if isinstance(node, SubqueryNode):
        sub_root = lower_select_plan(db, node.plan)
        op = SubqueryScan(sub_root, node.ref.alias, node.plan.names)
        op.est_rows = node.est_rows
        return op
    if isinstance(node, JoinNode):
        left = _lower_source(db, node.left, push, bound)
        right_push = list(split_conjuncts(node.condition))
        if node.kind == "INNER":
            right_push = right_push + push
        right = _lower_source(
            db, node.right, right_push, list(bound) + _node_bindings(node.left)
        )
        op = NestedLoopJoin(
            left, right, node.kind, node.condition, _node_schemas(db, node.right)
        )
        op.est_rows = node.est_rows
        return op
    raise ProgrammingError(f"cannot lower source {node!r}")


def _projection_cols(catalog, stmt: ast.Select) -> list[tuple]:
    cols: list[tuple] = []
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            star_names(catalog, stmt.source, item.expr.table)  # SQL018 check
            for binding, columns in binding_columns(catalog, stmt.source):
                if (
                    item.expr.table is None
                    or binding.lower() == item.expr.table.lower()
                ):
                    cols.append(("star", binding, columns))
        else:
            cols.append(("expr", item.expr))
    return cols


def _lower_branch(db, branch: BranchPlan) -> Operator:
    stmt = branch.select
    push = split_conjuncts(branch.where)
    child = _lower_source(db, branch.source, push, [])
    if branch.where is not None and not _is_const_true(branch.where):
        flt = FilterOp(branch.where, child)
        flt.est_rows = branch.est_rows if not branch.aggregate else None
        child = flt
    cols = _projection_cols(db.catalog, stmt)
    if branch.aggregate:
        op: Operator = HashAggregate(
            stmt,
            aggregate_calls(stmt),
            cols,
            binding_columns(db.catalog, stmt.source),
            child,
        )
    else:
        op = ProjectOp(cols, child)
    op.est_rows = branch.est_rows
    if branch.distinct:
        op = DistinctOp(op)
        op.est_rows = branch.est_rows
    return op


def _attach_order_limit(root: Operator, sp: SelectPlan) -> Operator:
    """Row-engine ORDER BY / LIMIT tail shared by both lowering paths.

    A LIMIT known negative at plan time never fuses into TopN: the heap
    would degrade to an unbounded sort at run time (and the verifier
    flags such plans as PLN005), so Sort+Limit — where a negative limit
    already means "no limit" — is the honest lowering.
    """
    if sp.order_by:
        if (
            sp.limit is not None
            and ENABLE_TOPN
            and not _negative_literal_limit(sp.limit)
        ):
            root = TopN(sp.order_by, sp.names, sp.limit, sp.offset, root)
            root.est_rows = sp.est_rows
        else:
            root = SortOp(sp.order_by, sp.names, root)
            root.est_rows = sp.est_rows
            if sp.limit is not None or sp.offset is not None:
                root = LimitOp(sp.limit, sp.offset, root)
                root.est_rows = sp.est_rows
    elif sp.limit is not None or sp.offset is not None:
        root = LimitOp(sp.limit, sp.offset, root)
        root.est_rows = sp.est_rows
    return root


def lower_select_plan(db, sp: SelectPlan) -> Operator:
    branch_ops = [_lower_branch(db, b) for b in sp.branches]
    root = branch_ops[0]
    if len(branch_ops) > 1:
        root = UnionOp(branch_ops, sp.dedup_until)
        root.est_rows = sp.est_rows
    return _attach_order_limit(root, sp)


# ---------------------------------------------------------------------------
# Vectorized lowering: single-table full scans over columnar segments.


def _vector_order_spec(sp: SelectPlan, comp: KernelCompiler):
    """ORDER BY terms as ``(kind, payload, descending)`` triples.

    Mirrors :func:`~repro.minidb.operators.order_value`: integer literals
    and output-name references sort on the projected column; anything
    else compiles to a separate sort-key kernel over the source batch.
    Returns None (falling back to the row plan) when a term cannot be
    resolved at plan time.
    """
    names = [n.lower() for n in sp.names]
    spec = []
    for oi in sp.order_by:
        e = oi.expr
        if isinstance(e, ast.Literal) and isinstance(e.value, int) and not isinstance(
            e.value, bool
        ):
            pos = e.value - 1
            if pos < 0 or pos >= len(names):
                return None  # row path raises the proper error at run time
            spec.append(("pos", pos, oi.descending))
            continue
        if (
            isinstance(e, ast.ColumnRef)
            and e.table is None
            and e.name.lower() in names
        ):
            spec.append(("pos", names.index(e.name.lower()), oi.descending))
            continue
        k = comp.compile(e)
        if k is None:
            return None
        spec.append(("kernel", k, oi.descending))
    return spec


def _lower_vectorized(db, sp: SelectPlan) -> Optional[Operator]:
    """Batch-at-a-time operator tree, or None when the shape or an
    expression does not vectorize (the row lowering then applies).

    Requirements: a single non-compound branch over one base-table scan
    with at least VECTOR_MIN_ROWS rows whose access path is a full scan
    (index paths already beat a columnar sweep), and every WHERE /
    projection / grouping / ordering expression must compile to a kernel.
    """
    if len(sp.branches) != 1:
        return None
    branch = sp.branches[0]
    node = branch.source
    if not isinstance(node, ScanNode):
        return None
    ref = node.ref
    table = db.table(ref.name)
    if len(table.rows) < VECTOR_MIN_ROWS:
        return None
    meta = table.meta
    push = split_conjuncts(branch.where)
    path = choose_access_path(
        db.indexes_on(meta.name),
        meta,
        ref.binding,
        push if ENABLE_PUSHDOWN else [],
        known_binding=_known_binding_fn(set(), meta, ref.binding),
        table_size=len(table.rows),
    )
    if not isinstance(path, FullScan):
        return None

    stmt = branch.select
    comp = KernelCompiler(meta, ref.binding)
    where_kernel = None
    if branch.where is not None and not _is_const_true(branch.where):
        where_kernel = comp.compile(branch.where)
        if where_kernel is None:
            return None
    cols = _projection_cols(db.catalog, stmt)

    def scan_and_filter() -> Operator:
        # Built last: every kernel must be compiled first so the slot
        # list handed to VecScan is final.
        child: Operator = VecScan(path, comp.slots)
        child.est_rows = node.est_rows
        if where_kernel is not None:
            flt = VecFilter(branch.where, where_kernel, child)
            flt.est_rows = branch.est_rows if not branch.aggregate else None
            child = flt
        return child

    if branch.aggregate:
        calls = aggregate_calls(stmt)
        key_kernels = []
        for e in stmt.group_by:
            k = comp.compile(e)
            if k is None:
                return None
            key_kernels.append(k)
        arg_kernels = {}
        for c in calls:
            if c.star:
                continue
            if len(c.args) != 1:
                return None  # row engine raises the proper error
            k = comp.compile(c.args[0])
            if k is None:
                return None
            arg_kernels[id(c)] = k
        # HAVING and the projection run through the row evaluator against
        # a representative scope, so every table column must be decoded.
        row_slots = [comp.slot_for(i) for i in range(len(meta.columns))]
        op: Operator = VecAggregate(
            stmt,
            calls,
            cols,
            binding_columns(db.catalog, stmt.source),
            scan_and_filter(),
            key_kernels,
            arg_kernels,
            ref.binding,
            meta.column_names,
            row_slots,
        )
        op.est_rows = branch.est_rows
        if branch.distinct:
            op = DistinctOp(op)
            op.est_rows = branch.est_rows
        return _attach_order_limit(op, sp)

    proj_kernels = []
    for entry in cols:
        if entry[0] == "star":
            for cname in entry[2]:
                k = comp.column_kernel(cname)
                if k is None:
                    return None
                proj_kernels.append(k)
        else:
            k = comp.compile(entry[1])
            if k is None:
                return None
            proj_kernels.append(k)

    if sp.order_by:
        if branch.distinct:
            return None  # DISTINCT + ORDER BY: keep the row plan
        spec = _vector_order_spec(sp, comp)
        if spec is None:
            return None
        if (
            sp.limit is not None
            and ENABLE_TOPN
            and not _negative_literal_limit(sp.limit)
        ):
            root: Operator = VecTopN(
                proj_kernels, spec, sp.limit, sp.offset, scan_and_filter()
            )
            root.est_rows = sp.est_rows
            return root
        root = VecSort(proj_kernels, spec, scan_and_filter())
        root.est_rows = sp.est_rows
        if sp.limit is not None or sp.offset is not None:
            root = VecLimit(sp.limit, sp.offset, root)
            root.est_rows = sp.est_rows
        return root

    root = VecProject(proj_kernels, scan_and_filter())
    root.est_rows = branch.est_rows
    if branch.distinct:
        root = VecDistinct(root)
        root.est_rows = branch.est_rows
    if sp.limit is not None or sp.offset is not None:
        root = VecLimit(sp.limit, sp.offset, root)
        root.est_rows = sp.est_rows
    return root
