"""Vectorized expression kernels for batch-at-a-time execution.

The row engine (:mod:`repro.minidb.expressions`) dispatches one
``_eval_*`` call per AST node per row.  For large scans that interpreter
overhead dominates, so the optimizer compiles eligible expressions into
**kernels**: closures evaluated once per :class:`ColumnBatch`, looping
over whole column vectors with the per-node dispatch hoisted out of the
loop.  Anything a kernel cannot express (subqueries, CASE, unknown
columns) makes :meth:`KernelCompiler.compile` return ``None`` and the
optimizer falls back to the classic row-at-a-time plan — vectorization
is strictly an opt-in fast path, never a semantics change.

Semantics contract: kernels reuse the row engine's primitives
(``compare``/``sort_key``/``cast_value``/``arith_value``/the scalar
function table and LIKE/IN caches), so results are byte-identical to the
Volcano path.  One documented divergence: a batch evaluates **eagerly**
— an erroring subexpression behind a short-circuiting ``AND``/``OR``
may raise where the row engine would have skipped it for some rows.
Truth values are unaffected (three-valued logic is preserved exactly).
"""

from __future__ import annotations

import operator as _operator
from typing import Any, Callable, List, Optional

from . import ast_nodes as ast
from .errors import ProgrammingError
from .expressions import (
    SCALAR_FUNCTIONS,
    Evaluator,
    Scope,
    arith_value,
    cast_value,
    like_to_regex,
)
from .sqltypes import compare, sort_key

#: Rows per batch pulled through the vectorized operators (configurable).
BATCH_SIZE = 1024

#: Empty scope scalar (row-invariant) subexpressions evaluate against.
_SCALAR_SCOPE = Scope()


class ColumnBatch:
    """One batch of column vectors.

    ``columns[slot]`` is a list of ``n`` Python values for the slot's
    table column; ``kinds[slot]`` is the storage kind the values were
    decoded from (``'i'`` int, ``'f'`` float, ``'s'`` str, ``'o'``
    mixed/unknown) — kernels use it to pick raw-operator fast paths.
    """

    __slots__ = ("n", "columns", "kinds", "rowids")

    def __init__(self, n: int, columns: List[list], kinds: List[str],
                 rowids: Optional[list] = None) -> None:
        self.n = n
        self.columns = columns
        self.kinds = kinds
        self.rowids = rowids


class _Kernel:
    """A compiled expression: ``fn(batch, evaluator) -> list`` of n values."""

    __slots__ = ("fn", "scalar", "slot")

    def __init__(self, fn: Callable[[ColumnBatch, Evaluator], list],
                 scalar: bool = False, slot: Optional[int] = None) -> None:
        self.fn = fn
        self.scalar = scalar  # row-invariant: same value for the whole batch
        self.slot = slot      # bare column reference: reads columns[slot]


def _scalar_safe(expr: ast.Expr) -> bool:
    """True when *expr* is row-invariant and safe to evaluate once per batch."""
    if isinstance(expr, (ast.Literal, ast.Parameter)):
        return True
    if isinstance(expr, ast.Unary):
        return _scalar_safe(expr.operand)
    if isinstance(expr, ast.Binary):
        return _scalar_safe(expr.left) and _scalar_safe(expr.right)
    if isinstance(expr, ast.Cast):
        return _scalar_safe(expr.operand)
    if isinstance(expr, ast.IsNull):
        return _scalar_safe(expr.operand)
    if isinstance(expr, ast.Between):
        return (
            _scalar_safe(expr.operand)
            and _scalar_safe(expr.low)
            and _scalar_safe(expr.high)
        )
    if isinstance(expr, ast.Like):
        return (
            _scalar_safe(expr.operand)
            and _scalar_safe(expr.pattern)
            and (expr.escape is None or _scalar_safe(expr.escape))
        )
    if isinstance(expr, ast.InList):
        return _scalar_safe(expr.operand) and all(
            _scalar_safe(i) for i in expr.items
        )
    if isinstance(expr, ast.Case):
        kids = list(expr.whens)
        if not all(_scalar_safe(c) and _scalar_safe(r) for c, r in kids):
            return False
        if expr.operand is not None and not _scalar_safe(expr.operand):
            return False
        return expr.default is None or _scalar_safe(expr.default)
    if isinstance(expr, ast.FuncCall):
        return (
            expr.name in SCALAR_FUNCTIONS
            and not expr.star
            and not expr.distinct
            and all(_scalar_safe(a) for a in expr.args)
        )
    return False


#: comparison op -> raw Python predicate (used on homogeneous fast paths)
_RAW_CMP: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: comparison op -> predicate over compare()'s -1/0/1
_CMP_ON_C: dict[str, Callable[[int], bool]] = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}

#: mirror of a comparison when its operands are swapped
_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class KernelCompiler:
    """Compiles expressions over one table binding into batch kernels.

    The compiler assigns a **slot** to every table column an expression
    touches; ``slots`` (slot index -> table column position) tells the
    scan which columns to materialise into each :class:`ColumnBatch`.
    ``compile`` returns ``None`` for anything it cannot vectorize — the
    caller then abandons the vectorized plan entirely.
    """

    def __init__(self, meta, binding: Optional[str] = None) -> None:
        self.meta = meta
        self.binding = (binding or meta.name).lower()
        self._slot_of: dict[int, int] = {}
        self.slots: List[int] = []

    def slot_for(self, position: int) -> int:
        """Slot carrying table column *position*, registering on demand."""
        slot = self._slot_of.get(position)
        if slot is None:
            slot = len(self.slots)
            self._slot_of[position] = slot
            self.slots.append(position)
        return slot

    def column(self, name: str) -> Optional[int]:
        lname = name.lower()
        if not self.meta.has_column(lname):
            return None
        return self.slot_for(self.meta.column_index(lname))

    def column_kernel(self, name: str) -> Optional[_Kernel]:
        """Kernel reading one bare table column (star expansion)."""
        slot = self.column(name)
        if slot is None:
            return None

        def fn(b: ColumnBatch, ev: Evaluator, slot=slot) -> list:
            return b.columns[slot]

        return _Kernel(fn, slot=slot)

    # -- public ------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> Optional[_Kernel]:
        if _scalar_safe(expr):
            def fn(b: ColumnBatch, ev: Evaluator, expr=expr) -> list:
                return [ev.evaluate(expr, _SCALAR_SCOPE)] * b.n

            return _Kernel(fn, scalar=True)
        method = getattr(self, f"_c_{type(expr).__name__}", None)
        if method is None:
            return None
        return method(expr)

    # -- node compilers ------------------------------------------------------

    def _c_ColumnRef(self, expr: ast.ColumnRef) -> Optional[_Kernel]:
        if expr.table is not None and expr.table.lower() != self.binding:
            return None
        slot = self.column(expr.name)
        if slot is None:
            return None

        def fn(b: ColumnBatch, ev: Evaluator, slot=slot) -> list:
            return b.columns[slot]

        return _Kernel(fn, slot=slot)

    def _c_Unary(self, expr: ast.Unary) -> Optional[_Kernel]:
        k = self.compile(expr.operand)
        if k is None:
            return None
        op = expr.op
        kf = k.fn
        if op == "NOT":
            def fn(b, ev):
                return [None if v is None else not bool(v) for v in kf(b, ev)]
        elif op == "-":
            def fn(b, ev):
                return [None if v is None else -v for v in kf(b, ev)]
        else:
            def fn(b, ev):
                return [None if v is None else +v for v in kf(b, ev)]
        return _Kernel(fn)

    def _c_Binary(self, expr: ast.Binary) -> Optional[_Kernel]:
        op = expr.op
        lk = self.compile(expr.left)
        if lk is None:
            return None
        rk = self.compile(expr.right)
        if rk is None:
            return None
        if op in ("AND", "OR"):
            return self._logic_kernel(op, lk, rk)
        if op in _CMP_ON_C:
            return self._compare_kernel(op, lk, rk)
        return self._arith_kernel(op, lk, rk)

    def _logic_kernel(self, op: str, lk: _Kernel, rk: _Kernel) -> _Kernel:
        lf, rf = lk.fn, rk.fn
        if op == "AND":
            def fn(b, ev):
                out = []
                append = out.append
                for a, c in zip(lf(b, ev), rf(b, ev)):
                    if (a is not None and not a) or (c is not None and not c):
                        append(False)
                    elif a is None or c is None:
                        append(None)
                    else:
                        append(True)
                return out
        else:
            def fn(b, ev):
                out = []
                append = out.append
                for a, c in zip(lf(b, ev), rf(b, ev)):
                    if (a is not None and a) or (c is not None and c):
                        append(True)
                    elif a is None or c is None:
                        append(None)
                    else:
                        append(False)
                return out
        return _Kernel(fn)

    def _compare_kernel(self, op: str, lk: _Kernel, rk: _Kernel) -> _Kernel:
        # Normalise "scalar OP column" to "column FLIP(OP) scalar".
        if lk.scalar and rk.slot is not None:
            lk, rk, op = rk, lk, _FLIP[op]
        cmpc = _CMP_ON_C[op]
        if rk.scalar and lk.slot is not None:
            raw = _RAW_CMP[op]
            slot = lk.slot
            rf = rk.fn

            def fn(b, ev):
                col = b.columns[slot]
                rv = rf(b, ev)[0] if b.n else None
                if rv is None:
                    return [None] * b.n
                kind = b.kinds[slot]
                # Typed segments hold no NULLs and exactly one Python
                # type, so the raw operator matches compare() bit for bit.
                if kind in "if" and type(rv) in (int, float):
                    return [raw(v, rv) for v in col]
                if kind == "s" and type(rv) is str:
                    return [raw(v, rv) for v in col]
                out = []
                for v in col:
                    c = compare(v, rv)
                    out.append(None if c is None else cmpc(c))
                return out

            return _Kernel(fn)
        lf, rf = lk.fn, rk.fn

        def fn(b, ev):
            out = []
            append = out.append
            for a, c in zip(lf(b, ev), rf(b, ev)):
                r = compare(a, c)
                append(None if r is None else cmpc(r))
            return out

        return _Kernel(fn)

    def _arith_kernel(self, op: str, lk: _Kernel, rk: _Kernel) -> Optional[_Kernel]:
        if op not in ("||", "+", "-", "*", "/", "%"):
            return None
        lf, rf = lk.fn, rk.fn
        if op == "||":
            def fn(b, ev):
                return [
                    None if a is None or c is None else f"{a}{c}"
                    for a, c in zip(lf(b, ev), rf(b, ev))
                ]

            return _Kernel(fn)
        if op in ("+", "-", "*") and lk.slot is not None and rk.scalar:
            slot = lk.slot
            fast = {"+": _operator.add, "-": _operator.sub, "*": _operator.mul}[op]

            def fn(b, ev):
                col = b.columns[slot]
                rv = rf(b, ev)[0] if b.n else None
                if rv is None:
                    return [None] * b.n
                if b.kinds[slot] in "if" and type(rv) in (int, float):
                    return [fast(v, rv) for v in col]
                return [
                    None if v is None else arith_value(op, v, rv) for v in col
                ]

            return _Kernel(fn)

        def fn(b, ev, op=op):
            return [
                None if a is None or c is None else arith_value(op, a, c)
                for a, c in zip(lf(b, ev), rf(b, ev))
            ]

        return _Kernel(fn)

    def _c_IsNull(self, expr: ast.IsNull) -> Optional[_Kernel]:
        k = self.compile(expr.operand)
        if k is None:
            return None
        kf = k.fn
        if expr.negated:
            def fn(b, ev):
                return [v is not None for v in kf(b, ev)]
        else:
            def fn(b, ev):
                return [v is None for v in kf(b, ev)]
        return _Kernel(fn)

    def _c_Between(self, expr: ast.Between) -> Optional[_Kernel]:
        ok = self.compile(expr.operand)
        lo = self.compile(expr.low)
        hi = self.compile(expr.high)
        if ok is None or lo is None or hi is None:
            return None
        of, lof, hif = ok.fn, lo.fn, hi.fn
        neg = expr.negated

        def fn(b, ev):
            out = []
            append = out.append
            for v, low, high in zip(of(b, ev), lof(b, ev), hif(b, ev)):
                c1 = compare(v, low)
                c2 = compare(v, high)
                if c1 is None or c2 is None:
                    append(None)
                else:
                    r = c1 >= 0 and c2 <= 0
                    append(not r if neg else r)
            return out

        return _Kernel(fn)

    def _c_Like(self, expr: ast.Like) -> Optional[_Kernel]:
        k = self.compile(expr.operand)
        if k is None:
            return None
        if not _scalar_safe(expr.pattern):
            return None
        if expr.escape is not None and not _scalar_safe(expr.escape):
            return None
        kf = k.fn
        pattern_expr = expr.pattern
        escape_expr = expr.escape
        neg = expr.negated

        def fn(b, ev):
            pattern = ev.evaluate(pattern_expr, _SCALAR_SCOPE)
            if pattern is None:
                return [None] * b.n
            escape = None
            if escape_expr is not None:
                escape = ev.evaluate(escape_expr, _SCALAR_SCOPE)
            key = (str(pattern), escape)
            rx = ev._like_cache.get(key)
            if rx is None:
                rx = like_to_regex(str(pattern), escape)
                ev._like_cache[key] = rx
            m = rx.match
            out = []
            append = out.append
            for v in kf(b, ev):
                if v is None:
                    append(None)
                else:
                    r = m(str(v)) is not None
                    append(not r if neg else r)
            return out

        return _Kernel(fn)

    def _c_InList(self, expr: ast.InList) -> Optional[_Kernel]:
        k = self.compile(expr.operand)
        if k is None:
            return None
        if not all(
            isinstance(i, (ast.Literal, ast.Parameter)) for i in expr.items
        ):
            return None
        kf = k.fn
        items = expr.items
        neg = expr.negated
        cache_id = id(expr)

        def fn(b, ev):
            cached = ev._inlist_cache.get(cache_id)
            if cached is None:
                keys: set = set()
                has_null = False
                for item in items:
                    iv = ev.evaluate(item, _SCALAR_SCOPE)
                    if iv is None:
                        has_null = True
                    else:
                        keys.add(sort_key(iv))
                cached = (keys, has_null)
                ev._inlist_cache[cache_id] = cached
            keys, has_null = cached
            out = []
            append = out.append
            for v in kf(b, ev):
                if v is None:
                    append(None)
                elif sort_key(v) in keys:
                    append(not neg)
                elif has_null:
                    append(None)
                else:
                    append(neg)
            return out

        return _Kernel(fn)

    def _c_Cast(self, expr: ast.Cast) -> Optional[_Kernel]:
        k = self.compile(expr.operand)
        if k is None:
            return None
        kf = k.fn
        type_name = expr.type_name

        def fn(b, ev):
            return [cast_value(v, type_name) for v in kf(b, ev)]

        return _Kernel(fn)

    def _c_FuncCall(self, expr: ast.FuncCall) -> Optional[_Kernel]:
        if expr.star or expr.distinct:
            return None
        scalar_fn = SCALAR_FUNCTIONS.get(expr.name)
        if scalar_fn is None:
            return None
        arg_kernels = []
        for arg in expr.args:
            ak = self.compile(arg)
            if ak is None:
                return None
            arg_kernels.append(ak.fn)
        name = expr.name

        def fn(b, ev):
            cols = [af(b, ev) for af in arg_kernels]
            out = []
            append = out.append
            try:
                for vals in zip(*cols) if cols else ((),) * b.n:
                    append(scalar_fn(*vals))
            except TypeError as exc:
                raise ProgrammingError(
                    f"bad arguments to {name}(): {exc}"
                ) from None
            return out

        return _Kernel(fn)
