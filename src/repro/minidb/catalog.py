"""Schema catalog for minidb: table, column, and index metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from . import ast_nodes as ast
from .errors import ProgrammingError, SemanticError, closest
from .sqltypes import INTEGER, affinity_for


@dataclass
class ColumnMeta:
    """Metadata for one table column."""

    name: str
    type_name: str
    affinity: str
    not_null: bool = False
    primary_key: bool = False
    autoincrement: bool = False
    unique: bool = False
    default: Any = None
    has_default: bool = False
    references: Optional[tuple[str, str]] = None  # (table, column)


@dataclass
class ForeignKeyMeta:
    """A (possibly composite) foreign-key constraint."""

    columns: list[str]
    ref_table: str
    ref_columns: list[str]


@dataclass
class TableMeta:
    """Metadata for one table."""

    name: str
    columns: list[ColumnMeta]
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[ForeignKeyMeta] = field(default_factory=list)
    unique_sets: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index_of = {c.name.lower(): i for i, c in enumerate(self.columns)}
        if len(self._index_of) != len(self.columns):
            raise ProgrammingError(f"duplicate column name in table {self.name}")

    def column_index(self, name: str) -> int:
        try:
            return self._index_of[name.lower()]
        except KeyError:
            raise SemanticError(
                f"no such column: {self.name}.{name}",
                code="SQL002",
                suggestion=closest(name, self.column_names),
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_of

    def column(self, name: str) -> ColumnMeta:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def rowid_pk_column(self) -> Optional[int]:
        """Index of a single INTEGER PRIMARY KEY column, if the table has one.

        Such a column gets auto-assigned ascending values on NULL insert,
        mirroring SQLite rowid aliasing — which is how the PerfTrack schema's
        ``*_id`` sequence columns are realised without a server.
        """
        if len(self.primary_key) != 1:
            return None
        i = self.column_index(self.primary_key[0])
        if self.columns[i].affinity == INTEGER:
            return i
        return None


@dataclass
class IndexMeta:
    """Metadata for one secondary index."""

    name: str
    table: str
    columns: list[str]
    unique: bool = False


class Catalog:
    """All schema objects in one database."""

    def __init__(self) -> None:
        self.tables: dict[str, TableMeta] = {}
        self.indexes: dict[str, IndexMeta] = {}
        #: Monotonic schema generation, bumped on every DDL mutation.  The
        #: connection keys its per-statement analysis memo on this so cached
        #: statements are re-checked after a CREATE/DROP.
        self.version = 0

    # -- tables ---------------------------------------------------------------

    def create_table(self, stmt: ast.CreateTable) -> TableMeta:
        key = stmt.name.lower()
        if key in self.tables:
            raise SemanticError(f"table {stmt.name} already exists", code="SQL015")
        columns: list[ColumnMeta] = []
        pk = list(stmt.primary_key)
        for cd in stmt.columns:
            default_val = None
            has_default = False
            if cd.default is not None:
                if not isinstance(cd.default, ast.Literal):
                    raise SemanticError("DEFAULT must be a literal value", code="SQL016")
                default_val = cd.default.value
                has_default = True
            references = None
            if cd.references is not None:
                references = (cd.references[0], cd.references[1] or "")
            columns.append(
                ColumnMeta(
                    name=cd.name,
                    type_name=cd.type_name,
                    affinity=affinity_for(cd.type_name),
                    not_null=cd.not_null or cd.primary_key,
                    primary_key=cd.primary_key,
                    autoincrement=cd.autoincrement,
                    unique=cd.unique,
                    default=default_val,
                    has_default=has_default,
                    references=references,
                )
            )
            if cd.primary_key:
                if pk and cd.name not in pk:
                    raise SemanticError("multiple PRIMARY KEY definitions", code="SQL014")
                if cd.name not in pk:
                    pk.append(cd.name)
        meta = TableMeta(stmt.name, columns, primary_key=pk)
        for colname in pk:
            meta.column_index(colname)  # validate
            meta.column(colname).not_null = True
        for uq in stmt.uniques:
            for c in uq:
                meta.column_index(c)
            meta.unique_sets.append(list(uq))
        for col in columns:
            if col.unique:
                meta.unique_sets.append([col.name])
        for local, ref_table, ref_cols in stmt.foreign_keys:
            for c in local:
                meta.column_index(c)
            meta.foreign_keys.append(ForeignKeyMeta(list(local), ref_table, list(ref_cols)))
        for col in columns:
            if col.references is not None:
                meta.foreign_keys.append(
                    ForeignKeyMeta([col.name], col.references[0], [col.references[1]] if col.references[1] else [])
                )
        self.tables[key] = meta
        self.version += 1
        return meta

    def drop_table(self, name: str) -> TableMeta:
        key = name.lower()
        try:
            meta = self.tables.pop(key)
        except KeyError:
            raise SemanticError(
                f"no such table: {name}",
                code="SQL001",
                suggestion=closest(name, [t.name for t in self.tables.values()]),
            ) from None
        for iname in [i for i, im in self.indexes.items() if im.table.lower() == key]:
            del self.indexes[iname]
        self.version += 1
        return meta

    def table(self, name: str) -> TableMeta:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SemanticError(
                f"no such table: {name}",
                code="SQL001",
                suggestion=closest(name, [t.name for t in self.tables.values()]),
            ) from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    # -- indexes ----------------------------------------------------------------

    def create_index(self, stmt: ast.CreateIndex) -> IndexMeta:
        key = stmt.name.lower()
        if key in self.indexes:
            raise SemanticError(f"index {stmt.name} already exists", code="SQL015")
        table = self.table(stmt.table)
        for c in stmt.columns:
            table.column_index(c)
        meta = IndexMeta(stmt.name, table.name, list(stmt.columns), unique=stmt.unique)
        self.indexes[key] = meta
        self.version += 1
        return meta

    def drop_index(self, name: str) -> IndexMeta:
        try:
            meta = self.indexes.pop(name.lower())
        except KeyError:
            raise SemanticError(
                f"no such index: {name}",
                code="SQL015",
                suggestion=closest(name, [i.name for i in self.indexes.values()]),
            ) from None
        self.version += 1
        return meta

    def has_index(self, name: str) -> bool:
        return name.lower() in self.indexes

    def indexes_on(self, table: str) -> list[IndexMeta]:
        t = table.lower()
        return [im for im in self.indexes.values() if im.table.lower() == t]
