"""In-memory index structures for minidb.

An :class:`Index` maps a tuple of column values (the *key*) to the set of
row ids carrying that key.  It maintains both a hash map (O(1) equality
probes — the access path pr-filter evaluation leans on) and a lazily
rebuilt sorted key list for range scans and ordered iteration.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator

from .errors import IntegrityError
from .sqltypes import sort_key


def _ordered(key: tuple) -> tuple:
    return tuple(sort_key(v) for v in key)


class Index:
    """A composite-key secondary index over one table."""

    def __init__(self, name: str, table: str, columns: list[str], unique: bool = False) -> None:
        self.name = name
        self.table = table
        self.columns = list(columns)
        self.unique = unique
        self._map: dict[tuple, list[int]] = {}
        # Sorted list of (ordered_key, key) pairs for range scans.
        self._sorted: list[tuple[tuple, tuple]] = []
        self._sorted_valid = True

    def __len__(self) -> int:
        return sum(len(v) for v in self._map.values())

    # -- maintenance ------------------------------------------------------------

    def insert(self, key: tuple, rowid: int) -> None:
        """Add *rowid* under *key*; enforces uniqueness for non-NULL keys."""
        bucket = self._map.get(key)
        if bucket is None:
            self._map[key] = [rowid]
            if self._sorted_valid:
                insort(self._sorted, (_ordered(key), key))
            return
        if self.unique and not any(v is None for v in key):
            raise IntegrityError(
                f"UNIQUE constraint failed: index {self.name} "
                f"({', '.join(self.columns)}) key {key!r}"
            )
        bucket.append(rowid)

    def check_insert(self, key: tuple) -> None:
        """Raise if inserting *key* would violate uniqueness (no mutation)."""
        if not self.unique or any(v is None for v in key):
            return
        if self._map.get(key):
            raise IntegrityError(
                f"UNIQUE constraint failed: index {self.name} "
                f"({', '.join(self.columns)}) key {key!r}"
            )

    def delete(self, key: tuple, rowid: int) -> None:
        bucket = self._map.get(key)
        if not bucket:
            return
        try:
            bucket.remove(rowid)
        except ValueError:
            return
        if not bucket:
            del self._map[key]
            self._sorted_valid = False  # lazy removal

    def clear(self) -> None:
        self._map.clear()
        self._sorted.clear()
        self._sorted_valid = True

    def rebuild(self, rows: Iterable[tuple[int, tuple]], key_of) -> None:
        """Recreate from scratch given an iterable of (rowid, row)."""
        self.clear()
        for rowid, row in rows:
            self.insert(key_of(row), rowid)

    # -- copy-on-write snapshots ---------------------------------------------------

    def freeze(self) -> "Index":
        """A read-only snapshot sharing this index's current structures.

        O(1): the frozen copy aliases ``_map``/``_sorted``.  Safe because
        every writer calls :meth:`detach` (replacing those objects on the
        live index) before its first mutation, and lazy re-sorting
        *reassigns* ``_sorted`` rather than mutating it in place.
        """
        snap = Index.__new__(Index)
        snap.name = self.name
        snap.table = self.table
        snap.columns = self.columns
        snap.unique = self.unique
        snap._map = self._map
        snap._sorted = self._sorted
        snap._sorted_valid = self._sorted_valid
        return snap

    def detach(self) -> None:
        """Copy-on-write split before the first mutation in a transaction.

        Copies the outer map, each rowid bucket, and the sorted key list
        so frozen snapshots handed to readers keep the old objects.
        """
        self._map = {k: list(v) for k, v in self._map.items()}
        self._sorted = list(self._sorted)

    # -- lookups ------------------------------------------------------------------

    def lookup(self, key: tuple) -> list[int]:
        """Row ids with exactly *key* (empty list when absent)."""
        return list(self._map.get(key, ()))

    def contains(self, key: tuple) -> bool:
        """True when any row carries *key* (no result-list allocation)."""
        return bool(self._map.get(key))

    def _ensure_sorted(self) -> None:
        if not self._sorted_valid:
            self._sorted = sorted((_ordered(k), k) for k in self._map)
            self._sorted_valid = True

    def range_scan(
        self,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield row ids whose keys fall within [low, high] in key order.

        Bounds may be prefixes of the full composite key; ``None`` means
        unbounded on that side.  NULL keys sort lowest and are *excluded*
        from bounded scans (SQL comparisons with NULL are unknown).
        """
        self._ensure_sorted()
        arr = self._sorted
        lo_i = 0
        hi_i = len(arr)
        if low is not None:
            probe = _ordered(low)
            if low_inclusive:
                lo_i = bisect_left(arr, (probe,))
            else:
                # advance past all keys whose prefix equals `low`
                lo_i = bisect_right(arr, ((probe + ((9, "￿"),)),))
        if high is not None:
            probe = _ordered(high)
            if high_inclusive:
                hi_i = bisect_right(arr, ((probe + ((9, "￿"),)),))
            else:
                hi_i = bisect_left(arr, (probe,))
        for _okey, key in arr[lo_i:hi_i]:
            if any(v is None for v in key[: len(low or high or ())]):
                continue
            yield from self._map.get(key, ())

    def iter_ordered(self, descending: bool = False) -> Iterator[int]:
        """Yield all row ids in key order."""
        self._ensure_sorted()
        seq = reversed(self._sorted) if descending else iter(self._sorted)
        for _okey, key in seq:
            yield from self._map.get(key, ())

    def distinct_keys(self) -> Iterator[tuple]:
        self._ensure_sorted()
        for _okey, key in self._sorted:
            yield key

    def max_key(self) -> tuple | None:
        """Largest fully non-NULL key, or ``None`` (SQL MAX ignores NULLs)."""
        self._ensure_sorted()
        for _okey, key in reversed(self._sorted):
            if not any(v is None for v in key):
                return key
        return None
