"""Durability for minidb: snapshot files plus a write-ahead log.

A file-backed database ``<path>`` consists of:

* ``<path>`` — a JSON snapshot of the catalog and all rows, written by
  :func:`write_snapshot` (on checkpoint/close), and
* ``<path>.wal`` — a JSON-lines log of committed mutations since the last
  snapshot.  On open the snapshot is loaded and the WAL replayed, so a
  crash between checkpoints loses nothing that was committed.

Mutation records accumulate on the :class:`~repro.minidb.storage.Transaction`
(as plain tuples) and reach the WAL file only at commit, so rollback
leaves no trace on disk.  Commits from concurrent sessions serialize
through a single append point — each commit's records plus its commit
marker are written contiguously under the append lock — and the fsync is
*group committed*: a committer whose bytes were already covered by a
neighbour's fsync skips its own (``minidb.wal.piggybacked_fsyncs``).
"""

from __future__ import annotations

import base64
import json
import os
import threading
from typing import Any

from ..obs.logsetup import get_logger
from ..obs.metrics import metrics as _M
from .catalog import ColumnMeta, ForeignKeyMeta, IndexMeta, TableMeta
from .errors import OperationalError
from .index import Index
from .storage import Database, Table

_FORMAT_VERSION = 1

_log = get_logger("minidb.wal")

# WAL metrics (no-ops while the registry is disabled).
_WAL_RECORDS = _M.counter("minidb.wal.records")
_WAL_BYTES = _M.counter("minidb.wal.bytes", unit="bytes")
_WAL_FSYNCS = _M.counter("minidb.wal.fsyncs")
_WAL_COMMITS = _M.counter("minidb.wal.commits")
_WAL_REPLAYED = _M.counter("minidb.wal.replayed_records")
_WAL_GROUP_COMMITS = _M.counter("minidb.wal.group_commits")
_WAL_PIGGYBACKED = _M.counter("minidb.wal.piggybacked_fsyncs")


def _encode_value(v: Any) -> Any:
    if isinstance(v, bytes):
        return {"__blob__": base64.b64encode(v).decode("ascii")}
    return v


def _decode_value(v: Any) -> Any:
    if isinstance(v, dict) and "__blob__" in v:
        return base64.b64decode(v["__blob__"])
    return v


def _encode_row(row: tuple) -> list:
    return [_encode_value(v) for v in row]


def _decode_row(row: list) -> tuple:
    return tuple(_decode_value(v) for v in row)


def _table_meta_to_dict(meta: TableMeta) -> dict:
    return {
        "name": meta.name,
        "columns": [
            {
                "name": c.name,
                "type_name": c.type_name,
                "affinity": c.affinity,
                "not_null": c.not_null,
                "primary_key": c.primary_key,
                "autoincrement": c.autoincrement,
                "unique": c.unique,
                "default": _encode_value(c.default),
                "has_default": c.has_default,
                "references": list(c.references) if c.references else None,
            }
            for c in meta.columns
        ],
        "primary_key": meta.primary_key,
        "unique_sets": meta.unique_sets,
        "foreign_keys": [
            {"columns": fk.columns, "ref_table": fk.ref_table, "ref_columns": fk.ref_columns}
            for fk in meta.foreign_keys
        ],
    }


def _table_meta_from_dict(d: dict) -> TableMeta:
    columns = [
        ColumnMeta(
            name=c["name"],
            type_name=c["type_name"],
            affinity=c["affinity"],
            not_null=c["not_null"],
            primary_key=c["primary_key"],
            autoincrement=c["autoincrement"],
            unique=c["unique"],
            default=_decode_value(c["default"]),
            has_default=c["has_default"],
            references=tuple(c["references"]) if c["references"] else None,
        )
        for c in d["columns"]
    ]
    meta = TableMeta(d["name"], columns, primary_key=list(d["primary_key"]))
    meta.unique_sets = [list(u) for u in d["unique_sets"]]
    meta.foreign_keys = [
        ForeignKeyMeta(list(fk["columns"]), fk["ref_table"], list(fk["ref_columns"]))
        for fk in d["foreign_keys"]
    ]
    return meta


def write_snapshot(db: Database, path: str) -> None:
    """Write the full database state atomically (tmp file + rename)."""
    doc = {
        "version": _FORMAT_VERSION,
        "tables": [],
        "indexes": [
            {
                "name": im.name,
                "table": im.table,
                "columns": im.columns,
                "unique": im.unique,
            }
            for im in db.catalog.indexes.values()
            if not im.name.startswith("__")
        ],
    }
    for key, table in db.tables.items():
        doc["tables"].append(
            {
                "meta": _table_meta_to_dict(table.meta),
                "next_rowid": table.next_rowid,
                "next_auto": table.next_auto,
                "rows": {str(rid): _encode_row(row) for rid, row in table.rows.items()},
            }
        )
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_snapshot(db: Database, path: str) -> None:
    """Populate an empty Database from a snapshot file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise OperationalError(f"cannot read database file {path}: {exc}") from exc
    if doc.get("version") != _FORMAT_VERSION:
        raise OperationalError(
            f"unsupported database format version {doc.get('version')!r}"
        )
    for tdoc in doc["tables"]:
        meta = _table_meta_from_dict(tdoc["meta"])
        db.catalog.tables[meta.name.lower()] = meta
        table = Table(meta)
        table.next_rowid = tdoc["next_rowid"]
        table.next_auto = tdoc["next_auto"]
        table.rows = {int(rid): _decode_row(row) for rid, row in tdoc["rows"].items()}
        table.bump_version()
        db.tables[meta.name.lower()] = table
        if meta.primary_key:
            db._make_internal_index(meta, meta.primary_key, unique=True, tag="pk")
        for i, uq in enumerate(meta.unique_sets):
            db._make_internal_index(meta, uq, unique=True, tag=f"uq{i}")
    for idoc in doc["indexes"]:
        imeta = IndexMeta(idoc["name"], idoc["table"], list(idoc["columns"]), idoc["unique"])
        db.catalog.indexes[imeta.name.lower()] = imeta
        db.indexes[imeta.name.lower()] = Index(
            imeta.name, imeta.table, imeta.columns, imeta.unique
        )
    # Rebuild all index contents from rows.
    for key, table in db.tables.items():
        for idx in db.indexes_on(table.meta.name):
            positions = [table.meta.column_index(c) for c in idx.columns]
            idx.rebuild(table.scan(), lambda row, p=positions: tuple(row[i] for i in p))


class Journal:
    """Concurrent-safe WAL writer: one append point, group-commit fsync.

    Transactions buffer their records as plain tuples (see
    ``Transaction.wal_records``); :meth:`commit_records` encodes them and
    writes records + commit marker contiguously under the append lock, so
    interleaved commits from other sessions can never split a batch.
    Durability is group-committed: after appending, a committer checks
    whether a neighbour's fsync already covered its sequence number and
    skips the syscall when it did.
    """

    def __init__(self, db: Database, path: str) -> None:
        self.db = db
        self.path = path
        self.wal_path = path + ".wal"
        self._fh = None
        self._append_lock = threading.Lock()
        self._fsync_lock = threading.Lock()
        self._written_seq = 0  # commits fully appended (buffered)
        self._durable_seq = 0  # commits covered by an fsync

    # -- transaction boundary -------------------------------------------------------

    def _encode_record(self, rec: tuple) -> dict:
        op = rec[0]
        if op == "insert":
            _, table, rowid, row = rec
            return {"op": "insert", "table": table, "rowid": rowid, "row": _encode_row(row)}
        if op == "insert_batch":
            _, table, rows = rec
            return {
                "op": "insert_batch",
                "table": table,
                "rows": [[rowid, _encode_row(row)] for rowid, row in rows],
            }
        if op == "update":
            _, table, rowid, row = rec
            return {"op": "update", "table": table, "rowid": rowid, "row": _encode_row(row)}
        if op == "delete":
            _, table, rowid = rec
            return {"op": "delete", "table": table, "rowid": rowid}
        if op == "ddl":
            return {"op": "ddl", "sql": rec[1]}
        raise OperationalError(f"unknown journal record {op!r}")

    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.wal_path, "a", encoding="utf-8")
        return self._fh

    def _do_fsync(self, fileno: int) -> None:
        """Seam for crash tests (override to observe/kill between flushes)."""
        os.fsync(fileno)

    def commit_records(self, records: "list[tuple]") -> None:
        """Append one transaction's records + commit marker, durably.

        Returns only once the commit marker is covered by an fsync —
        ours, or a concurrent committer's that flushed past us (group
        commit).  Encoding happens outside the locks.
        """
        if not records:
            return
        lines = [json.dumps(self._encode_record(rec)) for rec in records]
        lines.append(json.dumps({"op": "commit"}))
        data = "\n".join(lines) + "\n"
        with self._append_lock:
            fh = self._handle()
            fh.write(data)
            fh.flush()
            self._written_seq += 1
            my_seq = self._written_seq
        with self._fsync_lock:
            if self._durable_seq < my_seq:
                # Any commit fully appended before this point rides along:
                # its bytes are on the file, our fsync makes them durable.
                covered = self._written_seq
                self._do_fsync(fh.fileno())
                if covered > self._durable_seq:
                    self._durable_seq = covered
                if _M.enabled:
                    _WAL_FSYNCS.inc()
            elif _M.enabled:
                _WAL_PIGGYBACKED.inc()
        if _M.enabled:
            _WAL_RECORDS.add(len(records))
            _WAL_BYTES.add(len(data))
            _WAL_COMMITS.inc()
            _WAL_GROUP_COMMITS.inc()

    # -- recovery / checkpoint ----------------------------------------------------------

    def replay(self) -> int:
        """Apply committed WAL records to the database; returns count applied."""
        if not os.path.exists(self.wal_path):
            return 0
        applied = 0
        batch: list[dict] = []
        with open(self.wal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    break  # torn write at the tail: ignore the partial batch
                if rec.get("op") == "commit":
                    for r in batch:
                        self._apply(r)
                        applied += 1
                    batch.clear()
                else:
                    batch.append(rec)
        if applied:
            _WAL_REPLAYED.add(applied)
            _log.info("replayed %d WAL record(s) from %s", applied, self.wal_path)
        return applied

    def _apply(self, rec: dict) -> None:
        op = rec["op"]
        if op == "ddl":
            from .parser import parse
            from .executor import Executor

            Executor(self.db).execute(parse(rec["sql"]))
            return
        table = self.db.tables.get(rec["table"].lower())
        if table is None:
            raise OperationalError(f"WAL references missing table {rec['table']}")
        if op == "insert":
            self._apply_insert(table, rec["rowid"], _decode_row(rec["row"]))
        elif op == "insert_batch":
            for rowid, erow in rec["rows"]:
                self._apply_insert(table, rowid, _decode_row(erow))
        elif op == "update":
            rowid = rec["rowid"]
            old = table.rows.get(rowid)
            if old is not None:
                self.db._unindex_row(table, rowid, old)
            row = _decode_row(rec["row"])
            table.rows[rowid] = row
            table.bump_version()
            self.db._index_row(table, rowid, row, check=False)
        elif op == "delete":
            rowid = rec["rowid"]
            old = table.rows.pop(rowid, None)
            table.bump_version()
            if old is not None:
                self.db._unindex_row(table, rowid, old)
        elif op == "counters":
            table.next_rowid = rec["next_rowid"]
            table.next_auto = rec["next_auto"]
        else:
            raise OperationalError(f"unknown WAL record {op!r}")

    def _apply_insert(self, table: Table, rowid: int, row: tuple) -> None:
        table.rows[rowid] = row
        table.bump_version()
        self.db._index_row(table, rowid, row, check=False)
        table.next_rowid = max(table.next_rowid, rowid + 1)
        pk = table.meta.rowid_pk_column
        if pk is not None and isinstance(row[pk], int):
            table.next_auto = max(table.next_auto, row[pk] + 1)

    def checkpoint(self) -> None:
        """Fold the WAL into a fresh snapshot and truncate it.

        Taken under both commit locks so an in-flight commit can never
        append to a WAL that is about to be removed.
        """
        with self._append_lock, self._fsync_lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
            self._fh = None
            write_snapshot(self.db, self.path)
            try:
                os.remove(self.wal_path)
            except FileNotFoundError:
                pass
            self._written_seq = 0
            self._durable_seq = 0
