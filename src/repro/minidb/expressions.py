"""Expression evaluation for minidb.

Expressions are evaluated against a :class:`Scope`, which binds table
aliases to (column-names, row-values) pairs and chains to a parent scope
for correlated subqueries.  SQL three-valued logic is honoured: comparisons
with NULL yield NULL, ``AND``/``OR`` propagate unknowns, and ``WHERE``
treats NULL as false.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional, Sequence

from . import ast_nodes as ast
from .errors import DataError, ProgrammingError, SemanticError, closest
from .sqltypes import affinity_for, coerce, compare, sort_key


class Scope:
    """Chained name-resolution environment for expression evaluation."""

    __slots__ = ("bindings", "parent", "rowid")

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        # binding name (lowercased) -> (column names lowercased, values tuple)
        self.bindings: dict[str, tuple[list[str], tuple]] = {}
        self.parent = parent
        # storage rowid of the scanned row, set by scan operators so DML
        # statements can address the row they are about to mutate
        self.rowid: Optional[int] = None

    def bind(self, name: str, columns: Sequence[str], values: tuple) -> None:
        self.bindings[name.lower()] = ([c.lower() for c in columns], values)

    def child(self) -> "Scope":
        return Scope(parent=self)

    def resolve(self, table: Optional[str], column: str) -> Any:
        col = column.lower()
        scope: Optional[Scope] = self
        while scope is not None:
            if table is not None:
                entry = scope.bindings.get(table.lower())
                if entry is not None:
                    cols, values = entry
                    try:
                        return values[cols.index(col)]
                    except ValueError:
                        raise SemanticError(
                            f"no such column: {table}.{column}",
                            code="SQL002",
                            suggestion=closest(column, cols),
                        ) from None
            else:
                hits = []
                for cols, values in scope.bindings.values():
                    if col in cols:
                        hits.append(values[cols.index(col)])
                if len(hits) == 1:
                    return hits[0]
                if len(hits) > 1:
                    raise SemanticError(
                        f"ambiguous column name: {column}", code="SQL004"
                    )
            scope = scope.parent
        qual = f"{table}." if table else ""
        if table is not None and not self.has_binding(table):
            raise SemanticError(
                f"no such column: {qual}{column}",
                code="SQL003",
                suggestion=closest(table, self._visible_bindings()),
            )
        raise SemanticError(
            f"no such column: {qual}{column}",
            code="SQL002",
            suggestion=closest(column, self._visible_columns()),
        )

    def _visible_bindings(self) -> list[str]:
        names: list[str] = []
        scope: Optional[Scope] = self
        while scope is not None:
            names.extend(scope.bindings)
            scope = scope.parent
        return names

    def _visible_columns(self) -> list[str]:
        names: list[str] = []
        scope: Optional[Scope] = self
        while scope is not None:
            for cols, _values in scope.bindings.values():
                names.extend(cols)
            scope = scope.parent
        return names

    def has_binding(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name.lower() in scope.bindings:
                return True
            scope = scope.parent
        return False


def _is_true(value: Any) -> bool:
    """WHERE-clause truthiness: NULL and false are both rejected."""
    return value is not None and bool(value)


def cast_value(value: Any, type_name: str) -> Any:
    """CAST semantics shared by the row evaluator and the vector kernels."""
    try:
        return coerce(value, affinity_for(type_name))
    except DataError:
        # SQL CAST is forgiving: uncastable text becomes 0 for numbers.
        affinity = affinity_for(type_name)
        if affinity in ("INTEGER", "REAL", "NUMERIC", "BOOLEAN"):
            return 0 if affinity != "REAL" else 0.0
        raise


def arith_value(op: str, left: Any, right: Any) -> Any:
    """Non-NULL arithmetic/concat semantics shared with the vector kernels.

    Callers have already handled NULL propagation and comparison operators;
    this is the ``||``/``+``/``-``/``*``/``/``/``%`` tail of the row
    evaluator, kept in one place so both execution paths stay identical.
    """
    if op == "||":
        return f"{left}{right}"
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQL-style: division by zero yields NULL
            if isinstance(left, int) and isinstance(right, int):
                q = left // right
                # SQL integer division truncates toward zero.
                if q < 0 and q * right != left:
                    q += 1
                return q
            return left / right
        if op == "%":
            if right == 0:
                return None
            return left - right * int(left / right)
    except TypeError:
        raise DataError(
            f"invalid operands for {op}: {type(left).__name__}, {type(right).__name__}"
        ) from None
    raise ProgrammingError(f"unknown operator {op}")


def like_to_regex(pattern: str, escape: Optional[str] = None) -> re.Pattern:
    """Compile a SQL LIKE pattern to a case-insensitive regex."""
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape and ch == escape and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out) + r"\Z", re.IGNORECASE | re.DOTALL)


# ---------------------------------------------------------------------------
# Scalar functions

def _fn_coalesce(*args: Any) -> Any:
    for a in args:
        if a is not None:
            return a
    return None


def _fn_substr(s: Any, start: Any, length: Any = None) -> Any:
    if s is None or start is None:
        return None
    s = str(s)
    start = int(start)
    # SQL SUBSTR is 1-based; negative start counts from the end.
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(s) + start, 0)
    else:
        begin = 0
    if length is None:
        return s[begin:]
    n = int(length)
    if n < 0:
        return ""
    return s[begin : begin + n]


def _fn_instr(s: Any, needle: Any) -> Any:
    if s is None or needle is None:
        return None
    return str(s).find(str(needle)) + 1


def _fn_round(x: Any, digits: Any = 0) -> Any:
    if x is None:
        return None
    return round(float(x), int(digits or 0))


def _nullsafe(fn: Callable) -> Callable:
    def wrapped(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "LOWER": _nullsafe(lambda s: str(s).lower()),
    "UPPER": _nullsafe(lambda s: str(s).upper()),
    "LENGTH": _nullsafe(lambda s: len(str(s))),
    "ABS": _nullsafe(lambda x: abs(x)),
    "ROUND": _fn_round,
    "COALESCE": _fn_coalesce,
    "IFNULL": lambda a, b: b if a is None else a,
    "NULLIF": lambda a, b: None if a == b else a,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "INSTR": _fn_instr,
    "TRIM": _nullsafe(lambda s: str(s).strip()),
    "LTRIM": _nullsafe(lambda s: str(s).lstrip()),
    "RTRIM": _nullsafe(lambda s: str(s).rstrip()),
    "REPLACE": _nullsafe(lambda s, a, b: str(s).replace(str(a), str(b))),
    "TYPEOF": lambda v: (
        "null" if v is None
        else "integer" if isinstance(v, bool) or isinstance(v, int)
        else "real" if isinstance(v, float)
        else "text" if isinstance(v, str)
        else "blob"
    ),
    "MIN2": _nullsafe(min),
    "MAX2": _nullsafe(max),
    "CAST_INT": _nullsafe(lambda v: int(float(v))),
    "CAST_REAL": _nullsafe(lambda v: float(v)),
    "CAST_TEXT": _nullsafe(lambda v: str(v)),
}


class Evaluator:
    """Evaluates expression ASTs.

    ``subquery_runner`` is a callable ``(Select, Scope) -> list[tuple]``
    provided by the executor so that nested/correlated subqueries can run;
    ``aggregates`` maps ``id(FuncCall-node) -> value`` during the grouped
    phase of a SELECT.
    """

    def __init__(
        self,
        params: Sequence[Any] = (),
        subquery_runner: Optional[Callable] = None,
        aggregates: Optional[dict[int, Any]] = None,
    ) -> None:
        self.params = list(params)
        self.subquery_runner = subquery_runner
        self.aggregates = aggregates or {}
        self._like_cache: dict[tuple[str, Optional[str]], re.Pattern] = {}
        # Per-statement cache for constant IN lists: id(node) -> (keys, has_null).
        self._inlist_cache: dict[int, tuple[set, bool]] = {}

    # -- public ------------------------------------------------------------

    def evaluate(self, expr: ast.Expr, scope: Scope) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ProgrammingError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, scope)

    def is_true(self, expr: ast.Expr, scope: Scope) -> bool:
        return _is_true(self.evaluate(expr, scope))

    # -- node handlers -------------------------------------------------------

    def _eval_Literal(self, expr: ast.Literal, scope: Scope) -> Any:
        return expr.value

    def _eval_Parameter(self, expr: ast.Parameter, scope: Scope) -> Any:
        try:
            return self.params[expr.index]
        except IndexError:
            raise ProgrammingError(
                f"statement requires at least {expr.index + 1} parameters, "
                f"{len(self.params)} supplied"
            ) from None

    def _eval_ColumnRef(self, expr: ast.ColumnRef, scope: Scope) -> Any:
        return scope.resolve(expr.table, expr.name)

    def _eval_Unary(self, expr: ast.Unary, scope: Scope) -> Any:
        v = self.evaluate(expr.operand, scope)
        if expr.op == "NOT":
            if v is None:
                return None
            return not bool(v)
        if v is None:
            return None
        if expr.op == "-":
            return -v
        return +v

    def _eval_Binary(self, expr: ast.Binary, scope: Scope) -> Any:
        op = expr.op
        if op == "AND":
            left = self.evaluate(expr.left, scope)
            if left is not None and not left:
                return False
            right = self.evaluate(expr.right, scope)
            if right is not None and not right:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(expr.left, scope)
            if left is not None and left:
                return True
            right = self.evaluate(expr.right, scope)
            if right is not None and right:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(expr.left, scope)
        right = self.evaluate(expr.right, scope)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            c = compare(left, right)
            if c is None:
                return None
            return {
                "=": c == 0,
                "<>": c != 0,
                "<": c < 0,
                "<=": c <= 0,
                ">": c > 0,
                ">=": c >= 0,
            }[op]
        if left is None or right is None:
            return None
        return arith_value(op, left, right)

    def _eval_Like(self, expr: ast.Like, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        pattern = self.evaluate(expr.pattern, scope)
        if value is None or pattern is None:
            return None
        escape = None
        if expr.escape is not None:
            escape = self.evaluate(expr.escape, scope)
        key = (str(pattern), escape)
        rx = self._like_cache.get(key)
        if rx is None:
            rx = like_to_regex(str(pattern), escape)
            self._like_cache[key] = rx
        result = rx.match(str(value)) is not None
        return not result if expr.negated else result

    def _eval_Between(self, expr: ast.Between, scope: Scope) -> Any:
        v = self.evaluate(expr.operand, scope)
        low = self.evaluate(expr.low, scope)
        high = self.evaluate(expr.high, scope)
        c1 = compare(v, low)
        c2 = compare(v, high)
        if c1 is None or c2 is None:
            return None
        result = c1 >= 0 and c2 <= 0
        return not result if expr.negated else result

    def _eval_InList(self, expr: ast.InList, scope: Scope) -> Any:
        v = self.evaluate(expr.operand, scope)
        if v is None:
            return None
        # Constant item lists (literals/parameters) evaluate via a cached
        # set of sort keys: O(1) per row instead of O(items).
        cached = self._inlist_cache.get(id(expr))
        if cached is None and all(
            isinstance(i, (ast.Literal, ast.Parameter)) for i in expr.items
        ):
            keys: set = set()
            has_null = False
            for item in expr.items:
                iv = self.evaluate(item, scope)
                if iv is None:
                    has_null = True
                else:
                    keys.add(sort_key(iv))
            cached = (keys, has_null)
            self._inlist_cache[id(expr)] = cached
        if cached is not None:
            keys, has_null = cached
            if sort_key(v) in keys:
                return not expr.negated
            if has_null:
                return None
            return expr.negated
        saw_null = False
        for item in expr.items:
            iv = self.evaluate(item, scope)
            eq = compare(v, iv)
            if eq is None:
                saw_null = True
            elif eq == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_InSelect(self, expr: ast.InSelect, scope: Scope) -> Any:
        v = self.evaluate(expr.operand, scope)
        if v is None:
            return None
        rows = self._run_subquery(expr.select, scope)
        saw_null = False
        for row in rows:
            if len(row) != 1:
                raise ProgrammingError("IN subquery must return a single column")
            eq = compare(v, row[0])
            if eq is None:
                saw_null = True
            elif eq == 0:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_Exists(self, expr: ast.Exists, scope: Scope) -> Any:
        rows = self._run_subquery(expr.select, scope, limit_one=True)
        result = bool(rows)
        return not result if expr.negated else result

    def _eval_ScalarSelect(self, expr: ast.ScalarSelect, scope: Scope) -> Any:
        rows = self._run_subquery(expr.select, scope)
        if not rows:
            return None
        if len(rows[0]) != 1:
            raise ProgrammingError("scalar subquery must return a single column")
        if len(rows) > 1:
            raise ProgrammingError("scalar subquery returned more than one row")
        return rows[0][0]

    def _eval_IsNull(self, expr: ast.IsNull, scope: Scope) -> Any:
        v = self.evaluate(expr.operand, scope)
        result = v is None
        return not result if expr.negated else result

    def _eval_Case(self, expr: ast.Case, scope: Scope) -> Any:
        if expr.operand is not None:
            base = self.evaluate(expr.operand, scope)
            for cond, result in expr.whens:
                cv = self.evaluate(cond, scope)
                if compare(base, cv) == 0:
                    return self.evaluate(result, scope)
        else:
            for cond, result in expr.whens:
                if _is_true(self.evaluate(cond, scope)):
                    return self.evaluate(result, scope)
        if expr.default is not None:
            return self.evaluate(expr.default, scope)
        return None

    def _eval_Cast(self, expr: ast.Cast, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        return cast_value(value, expr.type_name)

    def _eval_FuncCall(self, expr: ast.FuncCall, scope: Scope) -> Any:
        if id(expr) in self.aggregates:
            return self.aggregates[id(expr)]
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            from .parser import AGGREGATE_NAMES

            if expr.name in AGGREGATE_NAMES:
                raise ProgrammingError(
                    f"misuse of aggregate function {expr.name}() outside GROUP BY context"
                )
            raise ProgrammingError(f"no such function: {expr.name}")
        args = [self.evaluate(a, scope) for a in expr.args]
        try:
            return fn(*args)
        except TypeError as exc:
            raise ProgrammingError(f"bad arguments to {expr.name}(): {exc}") from None

    def _eval_Star(self, expr: ast.Star, scope: Scope) -> Any:
        raise ProgrammingError("'*' is not valid in this context")

    # -- helpers ------------------------------------------------------------

    def _run_subquery(self, select: ast.Select, scope: Scope, limit_one: bool = False):
        if self.subquery_runner is None:
            raise ProgrammingError("subqueries are not available in this context")
        return self.subquery_runner(select, scope, limit_one)


class AggregateAccumulator:
    """Streaming accumulator for one aggregate call over one group."""

    def __init__(self, call: ast.FuncCall) -> None:
        self.call = call
        self.count = 0
        self.total: Any = None
        self.min: Any = None
        self.max: Any = None
        self.values: list[Any] = []  # only for DISTINCT / GROUP_CONCAT
        self.distinct_seen: set = set()

    def add(self, value: Any) -> None:
        if self.call.star:
            self.count += 1
            return
        if value is None:
            return
        if self.call.distinct:
            marker = (type(value).__name__, value)
            if marker in self.distinct_seen:
                return
            self.distinct_seen.add(marker)
        self.count += 1
        if self.call.name in ("SUM", "AVG", "TOTAL"):
            self.total = value if self.total is None else self.total + value
        elif self.call.name == "MIN":
            if self.min is None or sort_key(value) < sort_key(self.min):
                self.min = value
        elif self.call.name == "MAX":
            if self.max is None or sort_key(value) > sort_key(self.max):
                self.max = value
        elif self.call.name == "GROUP_CONCAT":
            self.values.append(value)

    def result(self) -> Any:
        name = self.call.name
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total
        if name == "TOTAL":
            return float(self.total or 0.0)
        if name == "AVG":
            if self.count == 0:
                return None
            return self.total / self.count
        if name == "MIN":
            return self.min
        if name == "MAX":
            return self.max
        if name == "GROUP_CONCAT":
            if not self.values:
                return None
            return ",".join(str(v) for v in self.values)
        raise ProgrammingError(f"unknown aggregate {name}")


def collect_aggregates(expr: Optional[ast.Expr], out: list[ast.FuncCall]) -> None:
    """Collect aggregate FuncCall nodes (not descending into subqueries)."""
    if expr is None:
        return
    from .parser import is_aggregate_call

    if is_aggregate_call(expr):
        out.append(expr)  # arguments of an aggregate are per-row, stop here
        return
    for child in _children(expr):
        collect_aggregates(child, out)


def _children(expr: ast.Expr):
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Like):
        return [expr.operand, expr.pattern] + ([expr.escape] if expr.escape else [])
    if isinstance(expr, ast.Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.InList):
        return [expr.operand] + expr.items
    if isinstance(expr, (ast.InSelect,)):
        return [expr.operand]
    if isinstance(expr, ast.IsNull):
        return [expr.operand]
    if isinstance(expr, ast.Case):
        kids = []
        if expr.operand is not None:
            kids.append(expr.operand)
        for c, r in expr.whens:
            kids.extend([c, r])
        if expr.default is not None:
            kids.append(expr.default)
        return kids
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.FuncCall):
        return expr.args
    return []
