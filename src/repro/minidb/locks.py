"""Per-table writer locks for the shared minidb engine.

A :class:`LockManager` hands out strict (exclusive) per-table writer
locks plus one schema lock that DDL takes together with every table
lock.  Readers never lock anything — they read published copy-on-write
snapshots (see ``storage.Database.snapshot_view``) — so the manager only
has to arbitrate between writers, and between writers and DDL.

Deadlock policy is avoidance-plus-timeout:

* Within one statement the full lock set is known up front (target
  table, its FK-referenced parents, and for ``DELETE`` the referencing
  children), so :meth:`LockManager.acquire_many` sorts the names and
  acquires in that global order — no deadlock is possible among
  single-statement writers.
* Across statements of a multi-statement transaction locks accumulate
  until commit/rollback, so two transactions *can* wait on each other.
  Every wait carries a deadline; a waiter that exceeds it raises a
  structured :class:`~repro.minidb.errors.LockTimeoutError` naming the
  resource, the holder, and the time waited, and the caller is expected
  to roll back (releasing its locks) and retry.

Locks are re-entrant per owner: a transaction re-touching a table it
already locked just bumps a depth counter.  All locks of an owner are
released together by :meth:`LockManager.release_all` at commit or
rollback — strict two-phase locking, which is what makes the published
snapshots consistent.

Everything is observable through ``minidb.locks.*`` counters (see
``docs/observability.md``): acquisitions, contended acquisitions,
timeouts, and total seconds spent waiting.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional

from ..obs.metrics import metrics as _M
from .errors import LockTimeoutError

#: Name of the schema lock; sorts before any SQL identifier so DDL's
#: ``acquire_many([SCHEMA_LOCK, *tables])`` respects the global order.
SCHEMA_LOCK = "__schema__"

#: Default seconds a writer waits on a contended lock before raising
#: :class:`LockTimeoutError` (the deadlock backstop).
DEFAULT_LOCK_TIMEOUT = 5.0

# Lock metrics (no-ops while the registry is disabled).
_ACQUIRED = _M.counter("minidb.locks.acquired")
_CONTENDED = _M.counter("minidb.locks.contended")
_TIMEOUTS = _M.counter("minidb.locks.timeouts")
_WAIT_SECONDS = _M.counter("minidb.locks.wait_seconds", unit="seconds")


class _WriterLock:
    """One exclusive, owner-re-entrant lock with its own condition."""

    __slots__ = ("name", "cond", "owner", "depth")

    def __init__(self, name: str) -> None:
        self.name = name
        self.cond = threading.Condition(threading.Lock())
        self.owner: Optional[str] = None
        self.depth = 0


class LockManager:
    """Strict per-table writer locks with ordered acquisition.

    Owners are opaque strings (the engine uses ``"session-<n>"``).
    Table names are normalized to lower case, matching the catalog.
    """

    def __init__(self, timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        self.timeout = timeout
        self._mutex = threading.Lock()
        self._locks: Dict[str, _WriterLock] = {}

    # -- internals ----------------------------------------------------------

    def _lock(self, name: str) -> _WriterLock:
        key = name.lower()
        with self._mutex:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = _WriterLock(key)
            return lock

    # -- acquisition --------------------------------------------------------

    def acquire(
        self, owner: str, name: str, timeout: Optional[float] = None
    ) -> None:
        """Acquire the writer lock on *name* for *owner* (re-entrant).

        Blocks up to *timeout* seconds (manager default when ``None``)
        then raises :class:`LockTimeoutError` naming the holder.
        """
        limit = self.timeout if timeout is None else timeout
        lock = self._lock(name)
        with lock.cond:
            if lock.owner == owner:
                lock.depth += 1
                _ACQUIRED.inc()
                return
            if lock.owner is not None:
                _CONTENDED.inc()
                deadline = time.monotonic() + limit
                waited_from = time.monotonic()
                while lock.owner is not None and lock.owner != owner:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not lock.cond.wait(remaining):
                        waited = time.monotonic() - waited_from
                        if lock.owner is None or lock.owner == owner:
                            break
                        _TIMEOUTS.inc()
                        _WAIT_SECONDS.inc(waited)
                        raise LockTimeoutError(
                            lock.name,
                            owner=owner,
                            holder=lock.owner,
                            waited=waited,
                        )
                _WAIT_SECONDS.inc(time.monotonic() - waited_from)
            lock.owner = owner
            lock.depth = 1
            _ACQUIRED.inc()

    def acquire_many(
        self, owner: str, names: Iterable[str], timeout: Optional[float] = None
    ) -> None:
        """Acquire several locks in the global (sorted) order.

        On timeout, locks taken *by this call* are released before the
        :class:`LockTimeoutError` propagates, so a failed statement does
        not leak locks it only needed for that statement — locks the
        owner already held (from earlier statements) are kept.
        """
        ordered = sorted({n.lower() for n in names})
        taken: List[str] = []
        try:
            for name in ordered:
                already = self.held(owner, name)
                self.acquire(owner, name, timeout=timeout)
                if not already:
                    taken.append(name)
        except LockTimeoutError:
            for name in taken:
                self.release(owner, name)
            raise

    def release(self, owner: str, name: str) -> None:
        """Release one level of *owner*'s hold on *name*."""
        lock = self._lock(name)
        with lock.cond:
            if lock.owner != owner:
                return
            lock.depth -= 1
            if lock.depth <= 0:
                lock.owner = None
                lock.depth = 0
                lock.cond.notify_all()

    def release_all(self, owner: str) -> None:
        """Drop every lock held by *owner* (end of transaction)."""
        with self._mutex:
            locks = list(self._locks.values())
        for lock in locks:
            with lock.cond:
                if lock.owner == owner:
                    lock.owner = None
                    lock.depth = 0
                    lock.cond.notify_all()

    # -- introspection ------------------------------------------------------

    def held(self, owner: str, name: str) -> bool:
        lock = self._lock(name)
        with lock.cond:
            return lock.owner == owner

    def holder(self, name: str) -> Optional[str]:
        lock = self._lock(name)
        with lock.cond:
            return lock.owner

    def held_by(self, owner: str) -> List[str]:
        """Names currently locked by *owner* (sorted)."""
        with self._mutex:
            locks = list(self._locks.values())
        out = []
        for lock in locks:
            with lock.cond:
                if lock.owner == owner:
                    out.append(lock.name)
        return sorted(out)
