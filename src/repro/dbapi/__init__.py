"""Backend abstraction over DB-API 2.0 drivers.

PerfTrack supported Oracle (via cx_Oracle) and PostgreSQL (via pyGreSQL)
behind one PTdataStore interface.  This package plays the same trick with
two genuinely different engines: :mod:`repro.minidb` (our from-scratch
embedded DBMS) and the standard library's ``sqlite3``.
"""

from .backends import Backend, MinidbBackend, SqliteBackend, open_backend

__all__ = ["Backend", "MinidbBackend", "SqliteBackend", "open_backend"]
