"""Concrete database backends for the PerfTrack data store.

A :class:`Backend` owns a DB-API connection and smooths over the dialect
differences the upper layers would otherwise see:

* parameter style (minidb and sqlite3 both take ``?``; a pyformat driver
  would override :meth:`Backend.sql`),
* error classes (normalised to minidb's PEP 249 hierarchy), and
* last-inserted-id retrieval.

PerfTrack's script interface did exactly this for cx_Oracle vs pyGreSQL.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, Iterator, Optional, Sequence

from .. import minidb
from ..minidb.errors import DatabaseError, IntegrityError, OperationalError, ProgrammingError


class Backend:
    """Dialect-neutral facade over one DB-API connection."""

    name = "abstract"
    paramstyle = "qmark"

    def __init__(self, connection) -> None:
        self.connection = connection

    # -- dialect hooks -----------------------------------------------------------

    def sql(self, text: str) -> str:
        """Translate canonical (qmark) SQL into the backend dialect."""
        return text

    def translate_error(self, exc: Exception) -> Exception:
        return exc

    # -- statement execution -------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        cur = self.connection.cursor()
        try:
            cur.execute(self.sql(sql), tuple(params))
        except Exception as exc:  # noqa: BLE001 - normalised below
            raise self.translate_error(exc) from exc
        return cur

    def executemany(self, sql: str, seq: Iterable[Sequence[Any]]) -> Any:
        cur = self.connection.cursor()
        try:
            cur.executemany(self.sql(sql), [tuple(p) for p in seq])
        except Exception as exc:  # noqa: BLE001
            raise self.translate_error(exc) from exc
        return cur

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        return self.execute(sql, params).fetchall()

    def stream(self, sql: str, params: Sequence[Any] = ()) -> Iterator[tuple]:
        """Iterate a query's rows without materialising the result set.

        Both minidb and sqlite3 cursors stream rows on demand, so an
        abandoned iteration (e.g. an existence probe) never pays for the
        rows it does not consume.  The cursor is closed when iteration
        ends or the generator is discarded.
        """
        cur = self.execute(sql, params)
        try:
            while True:
                row = cur.fetchone()
                if row is None:
                    return
                yield row
        finally:
            cur.close()

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> Optional[tuple]:
        # fetchone, not fetchall: a streaming cursor stops after one row.
        cur = self.execute(sql, params)
        try:
            return cur.fetchone()
        finally:
            cur.close()

    def scalar(self, sql: str, params: Sequence[Any] = ()) -> Any:
        row = self.query_one(sql, params)
        return None if row is None else row[0]

    def insert(self, sql: str, params: Sequence[Any] = ()) -> int:
        """Execute an INSERT and return the assigned integer key."""
        cur = self.execute(sql, params)
        rid = getattr(cur, "lastrowid", None)
        if rid is None:
            raise OperationalError("backend did not report lastrowid")
        return rid

    # -- transactions ----------------------------------------------------------------

    def commit(self) -> None:
        self.connection.commit()

    def rollback(self) -> None:
        self.connection.rollback()

    def close(self) -> None:
        self.connection.close()

    # -- schema helpers ----------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        raise NotImplementedError

    def has_index(self, name: str) -> bool:
        """True when a named secondary index exists (deferred shard builds)."""
        raise NotImplementedError

    def max_value(self, table: str, column: str) -> Any:
        """Largest non-NULL value of one column (bulk-load id seeding)."""
        return self.scalar(  # noqa: PTL001 — internal schema identifiers
            f"SELECT MAX({column}) FROM {table}"
        )


class MinidbBackend(Backend):
    """Backend over :mod:`repro.minidb` (errors already normalised)."""

    name = "minidb"

    def __init__(self, database: str = ":memory:") -> None:
        super().__init__(minidb.connect(database))
        self.database = database

    def has_table(self, name: str) -> bool:
        return self.connection.db.catalog.has_table(name)

    def has_index(self, name: str) -> bool:
        return name.lower() in self.connection.db.indexes

    def max_value(self, table: str, column: str) -> Any:
        # O(1) off a single-column index covering the column (the id
        # primary keys always have one); falls back to the aggregate scan.
        db = self.connection.db
        meta = db.catalog.table(table)
        col = column.lower()
        for idx in db.indexes_on(meta.name):
            if [c.lower() for c in idx.columns] == [col]:
                key = idx.max_key()
                return None if key is None else key[0]
        return super().max_value(table, column)

    def db_size_bytes(self) -> int:
        """Rough in-memory footprint: total stored cell count (see Table 1)."""
        total = 0
        for table in self.connection.db.tables.values():
            for row in table.rows.values():
                total += sum(len(str(v)) + 9 for v in row)
        return total


class EngineBackend(MinidbBackend):
    """Backend over one session of a shared :class:`repro.minidb.Engine`.

    The sharded data store opens one engine per fact shard, so every
    shard owns its database, its group-commit journal (WAL) and its
    statement cache independently — shard commits never serialise on a
    sibling's log.  Closing the backend closes the session *and* the
    engine (checkpointing the journal).
    """

    name = "minidb-engine"

    def __init__(self, database: str = ":memory:") -> None:
        from ..minidb.connection import Engine

        self.engine = Engine(database)
        # Deliberately skip MinidbBackend.__init__: the connection comes
        # from the engine, not the embedded single-session connect().
        Backend.__init__(self, self.engine.connect())
        self.database = database

    def close(self) -> None:
        self.connection.close()
        self.engine.close()


class SqliteBackend(Backend):
    """Backend over the standard library's sqlite3."""

    name = "sqlite"

    def __init__(self, database: str = ":memory:") -> None:
        conn = sqlite3.connect(database)
        conn.execute("PRAGMA foreign_keys = ON")
        super().__init__(conn)
        self.database = database

    def translate_error(self, exc: Exception) -> Exception:
        if isinstance(exc, sqlite3.IntegrityError):
            return IntegrityError(str(exc))
        if isinstance(exc, sqlite3.OperationalError):
            msg = str(exc)
            if "syntax" in msg or "no such" in msg:
                return ProgrammingError(msg)
            return OperationalError(msg)
        if isinstance(exc, sqlite3.ProgrammingError):
            return ProgrammingError(str(exc))
        if isinstance(exc, sqlite3.DatabaseError):
            return DatabaseError(str(exc))
        return exc

    def has_table(self, name: str) -> bool:
        row = self.query_one(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND lower(name) = ?",
            (name.lower(),),
        )
        return row is not None

    def has_index(self, name: str) -> bool:
        row = self.query_one(
            "SELECT name FROM sqlite_master WHERE type = 'index' AND lower(name) = ?",
            (name.lower(),),
        )
        return row is not None

    def db_size_bytes(self) -> int:
        page_count = self.scalar("PRAGMA page_count")
        page_size = self.scalar("PRAGMA page_size")
        return int(page_count or 0) * int(page_size or 0)


_BACKENDS = {
    "minidb": MinidbBackend,
    "sqlite": SqliteBackend,
    "sqlite3": SqliteBackend,
}


def open_backend(kind: str = "minidb", database: str = ":memory:") -> Backend:
    """Open a backend by name (``"minidb"`` or ``"sqlite"``)."""
    try:
        cls = _BACKENDS[kind.lower()]
    except KeyError:
        raise ProgrammingError(
            f"unknown backend {kind!r}; expected one of {sorted(set(_BACKENDS))}"
        ) from None
    return cls(database)
