"""Case study 3 — incorporating Paradyn data (paper Section 4.3).

Three IRS executions on MCR, measured with Paradyn dynamic
instrumentation and exported (histograms + index + resources + search
history graph), then mapped into the PerfTrack hierarchy and loaded.
Paper scale: ~17,000 resources, 8 metrics, ~25,000 performance results
per execution, varying across executions because instrumentation is
inserted at different times.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from ..core.datastore import LoadStats, PTDataStore
from ..ptdf.ptdfgen import IndexEntry
from ..ptdf.writer import PTdfWriter
from ..synth.paradyn_gen import ParadynSpec, generate_paradyn_export
from ..tools.paradyn import ParadynConverter
from .common import StudyReport, Table1Row, db_size_of, dir_stats, ptdf_record_counts


def run_paradyn_study(
    store: Optional[PTDataStore] = None,
    executions: int = 3,
    processes: int = 4,
    modules: int = 40,
    functions_per_module: int = 12,
    histograms: int = 25,
    bins: int = 1000,
    work_dir: Optional[str] = None,
    bins_as: str = "results",
) -> StudyReport:
    """Run the Paradyn-integration study; returns the report.

    Default scale is laptop-friendly; paper scale is reached with
    ``modules=550, functions_per_module=30, histograms=25, bins=1000``.
    ``bins_as="series"`` stores each histogram as one vector result (the
    paper's Section-6 proposal) instead of one scalar result per bin.
    """
    store = store or PTDataStore()
    work_dir = work_dir or tempfile.mkdtemp(prefix="paradyn-study-")
    raw_dir = os.path.join(work_dir, "raw")
    ptdf_dir = os.path.join(work_dir, "ptdf")
    os.makedirs(raw_dir, exist_ok=True)
    os.makedirs(ptdf_dir, exist_ok=True)

    db_before = db_size_of(store)
    conv = ParadynConverter(bins_as=bins_as)
    stats = LoadStats()
    exec_names = []
    ptdf_files = 0
    ptdf_lines = 0
    for i in range(executions):
        execution = f"irs-paradyn-r{i}"
        exec_names.append(execution)
        spec = ParadynSpec(
            execution=execution,
            processes=processes,
            modules=modules,
            functions_per_module=functions_per_module,
            histograms=histograms,
            bins=bins,
        )
        export = generate_paradyn_export(spec, raw_dir)
        entry = IndexEntry(
            execution, "IRS", "MPI", processes, 1,
            "2005-04-01T08:00:00", "2005-04-01T11:00:00",
        )
        # "We created a separate PTdf file for each execution."
        writer = PTdfWriter()
        writer.add_application("IRS")
        writer.add_execution(execution, "IRS")
        conv.convert_resources_file(export.resources_path, entry, writer)
        conv.convert_index(export.index_path, entry, writer)
        out_path = os.path.join(ptdf_dir, f"{execution}.ptdf")
        ptdf_lines += writer.write(out_path)
        ptdf_files += 1
        stats += store.load_file(out_path)

    raw_files, raw_bytes, _ = dir_stats(raw_dir)
    rec_counts = ptdf_record_counts(ptdf_dir)
    row = Table1Row(
        name="IRS-Paradyn",
        files_per_exec=raw_files / executions,
        raw_bytes_per_exec=raw_bytes / executions,
        resources_per_exec=rec_counts.get("Resource", 0) / executions,
        metrics=len(store.metrics()),
        results_per_exec=stats.results / executions,
        ptdf_files=ptdf_files,
        ptdf_lines=ptdf_lines,
        executions_loaded=stats.executions,
        db_growth_bytes=db_size_of(store) - db_before,
    )
    return StudyReport(
        store=store,
        table1=row,
        load_stats=stats,
        executions=exec_names,
        raw_dir=raw_dir,
        ptdf_dir=ptdf_dir,
    )
