"""End-to-end drivers for the paper's three case studies (Section 4).

Each study performs the full pipeline at a configurable scale: generate
raw tool output (repro.synth) -> convert to PTdf (repro.tools) -> load
into a data store (repro.core) -> report Table-1 statistics.

* :mod:`repro.studies.purple` — Section 4.1: IRS on MCR and Frost.
* :mod:`repro.studies.noise` — Section 4.2: SMG2000 on UV (benchmark +
  mpiP + PMAPI) and BG/L (benchmark only).
* :mod:`repro.studies.paradyn_study` — Section 4.3: IRS on MCR measured
  with Paradyn.
"""

from .common import StudyReport, Table1Row
from .purple import run_purple_study
from .noise import run_noise_study
from .paradyn_study import run_paradyn_study

__all__ = [
    "StudyReport",
    "Table1Row",
    "run_purple_study",
    "run_noise_study",
    "run_paradyn_study",
]
