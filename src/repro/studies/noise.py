"""Case study 2 — the noise-analysis study (paper Section 4.2).

SMG2000 on two then-new platforms: UV (128 Power4+ nodes) with benchmark
output, mpiP profiles and PMAPI counters; and BG/L (16k-node partition)
with benchmark output only — which is why the paper's Table 1 shows
SMG-UV at ~9,777 results/execution against SMG-BG/L's 8.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Sequence

from ..collect.machine import machine_to_ptdf
from ..collect.run_info import LibraryInfo, RunInfo, run_to_ptdf
from ..core.datastore import LoadStats, PTDataStore
from ..ptdf.ptdfgen import IndexEntry, PTdfGen
from ..ptdf.writer import PTdfWriter
from ..synth.machines import BGL, UV
from ..synth.mpip_gen import MpiPSpec, generate_mpip_report
from ..synth.smg_gen import SMGRunSpec, generate_smg_run
from ..tools import ALL_CONVERTERS
from .common import StudyReport, Table1Row, db_size_of, dir_stats, ptdf_record_counts


def _run_env(execution: str, processes: int) -> RunInfo:
    return RunInfo(
        execution=execution,
        machine="ppc64",
        node="uv001",
        num_processes=processes,
        num_threads=1,
        environment={"OMP_NUM_THREADS": "1", "MP_SHARED_MEMORY": "yes"},
        libraries=[
            LibraryInfo("libmpi_r.so.1", "1.0", 1843200, "MPI", "2005-01-15T10:00:00"),
            LibraryInfo("libpthreads.so.0", "0.9", 524288, "thread", "2004-11-02T09:00:00"),
        ],
        input_deck="smg2000.in",
        input_deck_timestamp="2005-02-20T12:00:00",
        submission="psub-88123",
        timestamp="2005-03-02T10:00:00",
    )


def run_noise_study(
    store: Optional[PTDataStore] = None,
    uv_executions: int = 4,
    bgl_executions: int = 6,
    uv_processes: Sequence[int] = (8, 16, 32, 64),
    bgl_processes: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    mpip_callsites: int = 25,
    work_dir: Optional[str] = None,
    max_nodes_per_partition: int = 8,
) -> tuple[StudyReport, StudyReport]:
    """Run the noise study; returns (SMG-UV report, SMG-BG/L report)."""
    store = store or PTDataStore()
    work_dir = work_dir or tempfile.mkdtemp(prefix="noise-study-")

    # New platforms: "Neither platform had previously been input."
    machine_writer = PTdfWriter()
    machine_to_ptdf(UV, machine_writer, max_nodes_per_partition=max_nodes_per_partition)
    machine_to_ptdf(BGL, machine_writer, max_nodes_per_partition=max_nodes_per_partition)
    store.load_records(machine_writer.records)

    reports = []
    for label, machine, n_exec, proc_counts, with_tools in (
        ("SMG-UV", UV, uv_executions, uv_processes, True),
        ("SMG-BG/L", BGL, bgl_executions, bgl_processes, False),
    ):
        raw_dir = os.path.join(work_dir, label.replace("/", "_"), "raw")
        ptdf_dir = os.path.join(work_dir, label.replace("/", "_"), "ptdf")
        os.makedirs(raw_dir, exist_ok=True)
        db_before = db_size_of(store)
        entries = []
        env_writer = PTdfWriter()
        env_writer.add_application("SMG2000")
        for i in range(n_exec):
            p = proc_counts[i % len(proc_counts)]
            execution = f"smg-{machine.name.lower()}-p{p:05d}-r{i}"
            spec = SMGRunSpec(execution, machine, p, with_pmapi=with_tools)
            generate_smg_run(spec, raw_dir)
            if with_tools:
                generate_mpip_report(
                    MpiPSpec(execution, p, callsites=mpip_callsites), raw_dir
                )
            entries.append(
                IndexEntry(
                    execution, "SMG2000", "MPI", p, 1,
                    "2005-03-02T08:00:00", "2005-03-02T10:00:00",
                )
            )
            # PTrun environment capture for each execution.
            env_writer.add_execution(execution, "SMG2000")
            run_to_ptdf(_run_env(execution, p), env_writer)
        store.load_records(env_writer.records)
        index_path = os.path.join(work_dir, f"{label.replace('/', '_')}.index")
        with open(index_path, "w", encoding="utf-8") as fh:
            for e in entries:
                fh.write(" ".join(e.fields()) + "\n")
        gen = PTdfGen(ALL_CONVERTERS)
        gen_reports = gen.generate(raw_dir, index_path, out_dir=ptdf_dir)
        stats = LoadStats()
        for rep in gen_reports:
            assert rep.output_path is not None
            stats += store.load_file(rep.output_path)
        raw_files, raw_bytes, _ = dir_stats(raw_dir)
        ptdf_files, _, ptdf_lines = dir_stats(ptdf_dir, suffix=".ptdf")
        rec_counts = ptdf_record_counts(ptdf_dir)
        row = Table1Row(
            name=label,
            files_per_exec=raw_files / n_exec,
            raw_bytes_per_exec=raw_bytes / n_exec,
            resources_per_exec=rec_counts.get("Resource", 0) / n_exec,
            metrics=len(store.metrics()),
            results_per_exec=stats.results / n_exec,
            ptdf_files=ptdf_files,
            ptdf_lines=ptdf_lines,
            executions_loaded=n_exec,
            db_growth_bytes=db_size_of(store) - db_before,
        )
        reports.append(
            StudyReport(
                store=store,
                table1=row,
                load_stats=stats,
                executions=[e.execution for e in entries],
                raw_dir=raw_dir,
                ptdf_dir=ptdf_dir,
            )
        )
    return reports[0], reports[1]
