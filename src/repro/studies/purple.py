"""Case study 1 — the ASC Purple benchmark study (paper Section 4.1).

IRS built with PTbuild, run on MCR (Linux) and Frost (AIX) over a process
count sweep; the per-run output files are converted with PTdfGen and
loaded.  Paper scale: 62 executions, ~1,514 results each, 6 raw files
each; ``executions_per_machine`` scales that down for quick runs.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Sequence

from ..collect.build_info import PTBuild, build_to_ptdf
from ..collect.machine import machine_to_ptdf
from ..core.datastore import PTDataStore
from ..ptdf.ptdfgen import IndexEntry, PTdfGen
from ..ptdf.writer import PTdfWriter
from ..synth.irs_gen import generate_irs_run, irs_sweep_specs
from ..synth.machines import FROST, MCR
from ..tools import ALL_CONVERTERS
from .common import StudyReport, Table1Row, db_size_of, dir_stats, ptdf_record_counts

#: A representative make transcript for the IRS build (PTbuild input).
IRS_MAKE_OUTPUT = """\
make[1]: Entering directory `/usr/workspace/irs'
mpicc -c -O2 -qarch=auto -DIRS_MPI irs.c -o irs.o
mpicc -c -O2 -qarch=auto -DIRS_MPI rtmain.c -o rtmain.o
mpicc -c -O2 -qarch=auto -DIRS_MPI matsolve.c -o matsolve.o
mpicc -o irs irs.o rtmain.o matsolve.o -lm libhypre.a -lmpi
make[1]: Leaving directory `/usr/workspace/irs'
"""

_WRAPPER_SHOW = {"mpicc": "xlc -I/usr/lpp/ppe.poe/include -lmpi_r -lvtd_r"}


def run_purple_study(
    store: Optional[PTDataStore] = None,
    process_counts: Sequence[int] = (2, 4, 8, 16, 32, 64),
    runs_per_count: int = 1,
    machines=(MCR, FROST),
    work_dir: Optional[str] = None,
    max_nodes_per_partition: int = 8,
) -> StudyReport:
    """Run the Purple benchmark study end to end; returns the report."""
    store = store or PTDataStore()
    work_dir = work_dir or tempfile.mkdtemp(prefix="purple-study-")
    raw_dir = os.path.join(work_dir, "raw")
    ptdf_dir = os.path.join(work_dir, "ptdf")
    os.makedirs(raw_dir, exist_ok=True)

    # Machine descriptions (already-present descriptive data in the paper).
    machine_writer = PTdfWriter()
    for m in machines:
        machine_to_ptdf(m, machine_writer, max_nodes_per_partition=max_nodes_per_partition)
    store.load_records(machine_writer.records)

    # PTbuild: capture the build once per machine.
    build_writer = PTdfWriter()
    for m in machines:
        info = PTBuild().from_output(
            IRS_MAKE_OUTPUT, makefile="Makefile.irs", arguments=("-j4",),
            wrapper_show=_WRAPPER_SHOW,
        )
        build_to_ptdf(info, build_writer, f"irs-build-{m.name.lower()}")
    store.load_records(build_writer.records)

    db_before = db_size_of(store)

    # Generate raw IRS output + index entries for PTdfGen.
    entries: list[IndexEntry] = []
    for m in machines:
        for spec in irs_sweep_specs(m, tuple(process_counts), runs_per_count):
            generate_irs_run(spec, raw_dir)
            entries.append(
                IndexEntry(
                    spec.execution, "IRS", "MPI", spec.processes, spec.threads,
                    "2005-03-01T08:00:00", "2005-03-01T09:00:00",
                )
            )
    index_path = os.path.join(work_dir, "irs.index")
    with open(index_path, "w", encoding="utf-8") as fh:
        for e in entries:
            fh.write(" ".join(e.fields()) + "\n")

    # PTdfGen: directory of raw files + index -> PTdf files.
    gen = PTdfGen(ALL_CONVERTERS)
    reports = gen.generate(raw_dir, index_path, out_dir=ptdf_dir)

    # Load all generated PTdf.
    from ..core.datastore import LoadStats

    stats = LoadStats()
    for rep in reports:
        assert rep.output_path is not None
        stats += store.load_file(rep.output_path)

    raw_files, raw_bytes, _ = dir_stats(raw_dir)
    ptdf_files, _, ptdf_lines = dir_stats(ptdf_dir, suffix=".ptdf")
    rec_counts = ptdf_record_counts(ptdf_dir)
    n_exec = len(entries)
    row = Table1Row(
        name="IRS",
        files_per_exec=raw_files / n_exec,
        raw_bytes_per_exec=raw_bytes / n_exec,
        resources_per_exec=rec_counts.get("Resource", 0) / n_exec,
        metrics=len(store.metrics()),
        results_per_exec=stats.results / n_exec,
        ptdf_files=ptdf_files,
        ptdf_lines=ptdf_lines,
        executions_loaded=stats.executions,
        db_growth_bytes=db_size_of(store) - db_before,
    )
    return StudyReport(
        store=store,
        table1=row,
        load_stats=stats,
        executions=[e.execution for e in entries],
        raw_dir=raw_dir,
        ptdf_dir=ptdf_dir,
    )
