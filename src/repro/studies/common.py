"""Shared plumbing for the case-study drivers: Table-1 accounting."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..core.datastore import LoadStats, PTDataStore


@dataclass
class Table1Row:
    """One row of the paper's Table 1.

    "Statistics for raw data, PTdf, and data store": per-execution raw
    file count and bytes, resources/metrics/results per execution, total
    PTdf files and lines, executions loaded, and data-store growth.
    """

    name: str
    files_per_exec: float = 0.0
    raw_bytes_per_exec: float = 0.0
    resources_per_exec: float = 0.0
    metrics: int = 0
    results_per_exec: float = 0.0
    ptdf_files: int = 0
    ptdf_lines: int = 0
    executions_loaded: int = 0
    db_growth_bytes: int = 0

    def render(self) -> str:
        return (
            f"{self.name:<12} files/exec={self.files_per_exec:>6.1f}  "
            f"raw~bytes/exec={self.raw_bytes_per_exec:>10.0f}  "
            f"resources/exec={self.resources_per_exec:>8.1f}  "
            f"metrics={self.metrics:>4d}  "
            f"results/exec={self.results_per_exec:>8.1f}  "
            f"PTdf files/lines={self.ptdf_files}/{self.ptdf_lines}  "
            f"execs loaded={self.executions_loaded}  "
            f"DB growth={self.db_growth_bytes}B"
        )


@dataclass
class StudyReport:
    """Everything a study driver hands back."""

    store: PTDataStore
    table1: Table1Row
    load_stats: LoadStats
    executions: list[str] = field(default_factory=list)
    raw_dir: Optional[str] = None
    ptdf_dir: Optional[str] = None


def dir_stats(directory: str, suffix: Optional[str] = None) -> tuple[int, int, int]:
    """(file count, total bytes, total lines) for files in *directory*."""
    files = 0
    size = 0
    lines = 0
    for fname in sorted(os.listdir(directory)):
        if suffix is not None and not fname.endswith(suffix):
            continue
        path = os.path.join(directory, fname)
        if not os.path.isfile(path):
            continue
        files += 1
        size += os.path.getsize(path)
        with open(path, "rb") as fh:
            lines += sum(1 for _ in fh)
    return files, size, lines


def ptdf_record_counts(directory: str) -> dict[str, int]:
    """Count PTdf records by kind across ``*.ptdf`` files in *directory*.

    Table 1 reports per-execution resource counts as they appear in the
    PTdf, so this counts ``Resource``/``PerfResult``/... lines directly.
    """
    counts: dict[str, int] = {}
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".ptdf"):
            continue
        with open(os.path.join(directory, fname), "r", encoding="utf-8") as fh:
            for line in fh:
                kind = line.split(" ", 1)[0].strip()
                if kind:
                    counts[kind] = counts.get(kind, 0) + 1
    return counts


def db_size_of(store: PTDataStore) -> int:
    """Backend-reported data-store size in bytes (rough, cross-backend)."""
    backend = store.backend
    sizer = getattr(backend, "db_size_bytes", None)
    return int(sizer()) if sizer is not None else 0
