"""PTdf parser: text lines -> record objects.

Lines are whitespace-separated fields; fields containing whitespace are
double-quoted with backslash escapes.  ``#`` starts a comment (full-line
or trailing, when not inside quotes).  Blank lines are ignored.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional

from .format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    PerfResultSeriesRec,
    Record,
    ResourceSet,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceTypeRec,
    parse_resource_set_field,
)


class PTdfParseError(ValueError):
    """A malformed PTdf line, with file/line (and column/field) context.

    ``col`` is the 1-based column of the offending character, when known
    (e.g. the opening quote of an unterminated quoted field); ``field`` is
    the 1-based index of the offending field, counting the record kind as
    field 1.  Both are ``None`` when the error concerns the whole line.
    """

    def __init__(
        self,
        message: str,
        source: str = "<string>",
        lineno: int = 0,
        col: Optional[int] = None,
        field: Optional[int] = None,
    ) -> None:
        where = f"{source}:{lineno}"
        if col is not None:
            where = f"{where}:{col}"
        text = f"{where}: {message}"
        if field is not None:
            text = f"{text} (field {field})"
        super().__init__(text)
        self.source = source
        self.lineno = lineno
        self.col = col
        self.field = field


class _FieldError(ValueError):
    """Internal: a tokenise/record error that knows where on the line it is.

    ``parse_lines`` promotes these to :class:`PTdfParseError`, preserving
    the column/field position alongside the file/line context.
    """

    def __init__(
        self, message: str, col: Optional[int] = None, field: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.col = col
        self.field = field


def split_fields(line: str) -> list[str]:
    """Tokenise one PTdf line honouring quotes, escapes and # comments."""
    fields: list[str] = []
    buf: list[str] = []
    in_quotes = False
    in_field = False
    quote_col = 0  # 1-based column of the last opening quote
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if in_quotes:
            if ch == "\\" and i + 1 < n:
                buf.append(line[i + 1])
                i += 2
                continue
            if ch == '"':
                in_quotes = False
                i += 1
                continue
            buf.append(ch)
            i += 1
            continue
        if ch == '"':
            in_quotes = True
            in_field = True
            quote_col = i + 1
            i += 1
            continue
        if ch == "#":
            break
        if ch.isspace():
            if in_field:
                fields.append("".join(buf))
                buf = []
                in_field = False
            i += 1
            continue
        buf.append(ch)
        in_field = True
        i += 1
    if in_quotes:
        raise _FieldError(
            f"unterminated quoted field (quote opened at column {quote_col})",
            col=quote_col,
            field=len(fields) + 1,
        )
    if in_field:
        fields.append("".join(buf))
    return fields


def _parse_record(fields: list[str]) -> Record:
    kind = fields[0]
    args = fields[1:]
    if kind == "Application":
        _need(args, 1, kind)
        return ApplicationRec(args[0])
    if kind == "ResourceType":
        _need(args, 1, kind)
        return ResourceTypeRec(args[0])
    if kind == "Execution":
        _need(args, 2, kind)
        return ExecutionRec(args[0], args[1])
    if kind == "Resource":
        if len(args) not in (2, 3):
            raise ValueError(f"Resource takes 2 or 3 fields, got {len(args)}")
        return ResourceRec(args[0], args[1], args[2] if len(args) == 3 else None)
    if kind == "ResourceAttribute":
        if len(args) not in (3, 4):
            raise ValueError(
                f"ResourceAttribute takes 3 or 4 fields, got {len(args)}"
            )
        attr_type = args[3] if len(args) == 4 else "string"
        return ResourceAttributeRec(args[0], args[1], args[2], attr_type)
    if kind == "PerfResult":
        _need(args, 6, kind)
        sets = _resource_sets(args[1])
        try:
            value = float(args[4])
        except ValueError:
            raise _FieldError(
                f"bad PerfResult value {args[4]!r}", field=6
            ) from None
        return PerfResultRec(args[0], sets, args[2], args[3], value, args[5])
    if kind == "PerfResultSeries":
        _need(args, 8, kind)
        sets = _resource_sets(args[1])
        try:
            start_time = float(args[5])
            bin_width = float(args[6])
        except ValueError:
            raise _FieldError("bad PerfResultSeries start/width", field=7) from None
        values: list = []
        for tok in args[7].split(","):
            tok = tok.strip()
            if not tok:
                continue
            if tok.lower() == "nan":
                values.append(None)
            else:
                try:
                    values.append(float(tok))
                except ValueError:
                    raise _FieldError(
                        f"bad PerfResultSeries value {tok!r}", field=9
                    ) from None
        return PerfResultSeriesRec(
            args[0], sets, args[2], args[3], args[4], start_time, bin_width,
            tuple(values),
        )
    if kind == "ResourceConstraint":
        _need(args, 2, kind)
        return ResourceConstraintRec(args[0], args[1])
    raise _FieldError(f"unknown PTdf record kind {kind!r}", field=1)


def _resource_sets(text: str) -> tuple[ResourceSet, ...]:
    """Parse a resourceSet field, pinning errors to field 3 of the line."""
    try:
        return parse_resource_set_field(text)
    except ValueError as exc:
        raise _FieldError(str(exc), field=3) from None


def _need(args: list[str], count: int, kind: str) -> None:
    if len(args) != count:
        raise ValueError(f"{kind} takes {count} fields, got {len(args)}")


def parse_lines(lines: Iterable[str], source: str = "<string>") -> Iterator[Record]:
    """Parse an iterable of PTdf lines, yielding records lazily."""
    for lineno, raw in enumerate(lines, start=1):
        try:
            fields = split_fields(raw)
        except ValueError as exc:
            raise PTdfParseError(
                str(exc), source, lineno,
                col=getattr(exc, "col", None), field=getattr(exc, "field", None),
            ) from None
        if not fields:
            continue
        try:
            yield _parse_record(fields)
        except ValueError as exc:
            raise PTdfParseError(
                str(exc), source, lineno,
                col=getattr(exc, "col", None), field=getattr(exc, "field", None),
            ) from None


def parse_string(text: str, source: str = "<string>") -> list[Record]:
    """Parse a PTdf document held in a string."""
    return list(parse_lines(text.split("\n"), source))


def parse_file(path: str) -> list[Record]:
    """Parse one PTdf file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(parse_lines(fh, source=os.fspath(path)))
