"""PTdf record model (paper Figure 6).

The eight record kinds::

    Application         appName
    ResourceType        resourceTypeName
    Execution           execName appName
    Resource            resourceName resourceTypeName [execName]
    ResourceAttribute   resourceName attributeName attributeValue attributeType
    PerfResult          execName resourceSet perfToolName metricName value units
    ResourceConstraint  resourceName1 resourceName2

Conventions (from Sections 2.1 and 3.3 of the paper):

* Hierarchical resource *names* are Unix-style paths whose full form is
  unique: ``/SingleMachineFrost/Frost/batch/frost121/p0``.  The parent of
  a resource is its name minus the last segment.
* Resource *types* are path-style too (``grid/machine/partition/node``);
  the depth of a resource's name matches the depth of its type.
* ``attributeType`` is ``string`` or ``resource`` — the latter is
  equivalent to a ResourceConstraint (a resource-valued attribute).
* A ``resourceSet`` is colon-separated lists of comma-separated resource
  names, each list suffixed by its context type in parentheses:
  ``/A/p0,/Code/main(primary):/A/p1(sender)``.  Context types are
  ``primary | parent | child | sender | receiver``.

Fields containing whitespace are double-quoted with backslash escapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

FOCUS_TYPES = ("primary", "parent", "child", "sender", "receiver")


def split_name(name: str) -> list[str]:
    """Split a full resource name into segments (``/a/b/c`` -> ``[a, b, c]``)."""
    if not name.startswith("/"):
        raise ValueError(f"resource name must start with '/': {name!r}")
    parts = [p for p in name.split("/")[1:] if p != ""]
    if not parts:
        raise ValueError(f"empty resource name: {name!r}")
    return parts


def parent_name(name: str) -> Optional[str]:
    """Full name of the parent resource, or None for a top-level resource."""
    parts = split_name(name)
    if len(parts) == 1:
        return None
    return "/" + "/".join(parts[:-1])


def base_name(name: str) -> str:
    """The last segment of a full resource name (paper: the *base name*)."""
    return split_name(name)[-1]


def type_of_depth(type_path: str, depth: int) -> str:
    """Prefix of a type path with *depth* segments (``grid/machine``, 2 -> same)."""
    segments = type_path.split("/")
    if depth < 1 or depth > len(segments):
        raise ValueError(f"depth {depth} out of range for type {type_path!r}")
    return "/".join(segments[:depth])


def quote_field(text: str) -> str:
    """Quote a PTdf field if it contains whitespace or quotes."""
    if text == "" or any(c.isspace() or c in '"#\\' for c in text):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


@dataclass(frozen=True)
class ResourceSet:
    """One context in a PerfResult: resource names plus a focus type."""

    names: tuple[str, ...]
    set_type: str = "primary"

    def __post_init__(self) -> None:
        if self.set_type not in FOCUS_TYPES:
            raise ValueError(
                f"bad resource set type {self.set_type!r}; expected one of {FOCUS_TYPES}"
            )
        if not self.names:
            raise ValueError("resource set must contain at least one resource")

    def render(self) -> str:
        return ",".join(self.names) + f"({self.set_type})"


@dataclass(frozen=True)
class ApplicationRec:
    name: str

    def fields(self) -> list[str]:
        return ["Application", self.name]


@dataclass(frozen=True)
class ResourceTypeRec:
    """Declares a resource type path; every prefix becomes a type node."""

    name: str  # e.g. "grid/machine/partition/node/processor" or "application"

    def fields(self) -> list[str]:
        return ["ResourceType", self.name]


@dataclass(frozen=True)
class ExecutionRec:
    name: str
    application: str

    def fields(self) -> list[str]:
        return ["Execution", self.name, self.application]


@dataclass(frozen=True)
class ResourceRec:
    name: str  # full path-style name
    type: str  # path-style type of matching depth
    execution: Optional[str] = None  # binds the resource to one execution

    def fields(self) -> list[str]:
        out = ["Resource", self.name, self.type]
        if self.execution is not None:
            out.append(self.execution)
        return out


@dataclass(frozen=True)
class ResourceAttributeRec:
    resource: str
    attribute: str
    value: str
    attr_type: str = "string"  # "string" | "resource"

    def __post_init__(self) -> None:
        if self.attr_type not in ("string", "resource"):
            raise ValueError(f"bad attributeType {self.attr_type!r}")

    def fields(self) -> list[str]:
        return [
            "ResourceAttribute",
            self.resource,
            self.attribute,
            self.value,
            self.attr_type,
        ]


@dataclass(frozen=True)
class PerfResultRec:
    execution: str
    resource_sets: tuple[ResourceSet, ...]
    tool: str
    metric: str
    value: float
    units: str

    def fields(self) -> list[str]:
        rs = ":".join(s.render() for s in self.resource_sets)
        return [
            "PerfResult",
            self.execution,
            rs,
            self.tool,
            self.metric,
            repr(self.value),
            self.units,
        ]


@dataclass(frozen=True)
class PerfResultSeriesRec:
    """Extension record (paper Section 6 future work): one array-valued
    performance result, e.g. a whole Paradyn histogram.  ``values`` holds
    ``None`` for bins with no data (exported as ``nan``)."""

    execution: str
    resource_sets: tuple[ResourceSet, ...]
    tool: str
    metric: str
    units: str
    start_time: float
    bin_width: float
    values: tuple[Optional[float], ...]

    def fields(self) -> list[str]:
        rs = ":".join(s.render() for s in self.resource_sets)
        rendered = ",".join(
            "nan" if v is None else repr(v) for v in self.values
        )
        return [
            "PerfResultSeries",
            self.execution,
            rs,
            self.tool,
            self.metric,
            self.units,
            repr(self.start_time),
            repr(self.bin_width),
            rendered,
        ]


@dataclass(frozen=True)
class ResourceConstraintRec:
    resource1: str
    resource2: str

    def fields(self) -> list[str]:
        return ["ResourceConstraint", self.resource1, self.resource2]


Record = Union[
    ApplicationRec,
    ResourceTypeRec,
    ExecutionRec,
    ResourceRec,
    ResourceAttributeRec,
    PerfResultRec,
    PerfResultSeriesRec,
    ResourceConstraintRec,
]


def render_record(record: Record) -> str:
    """One PTdf line for *record*."""
    return " ".join(quote_field(f) for f in record.fields())


def parse_resource_set_field(text: str) -> tuple[ResourceSet, ...]:
    """Parse the resourceSet field of a PerfResult line."""
    sets: list[ResourceSet] = []
    for chunk in text.split(":"):
        chunk = chunk.strip()
        if not chunk:
            raise ValueError(f"empty resource set in {text!r}")
        if chunk.endswith(")") and "(" in chunk:
            body, _, suffix = chunk.rpartition("(")
            set_type = suffix[:-1].strip()
        else:
            body, set_type = chunk, "primary"
        names = tuple(n.strip() for n in body.split(",") if n.strip())
        sets.append(ResourceSet(names, set_type))
    return tuple(sets)
