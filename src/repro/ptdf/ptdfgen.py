"""PTdfGen — generate PTdf for a directory full of tool-output files.

From paper Section 3.3: *"The user creates an index file, containing a
list of entries, one per execution.  Each entry lists the execution name,
application name, concurrency model, number of processes, number of
threads, and timestamps for the build and run.  PerfTrack generates PTdf
files for the executions listed in one index file."*

The generator itself is format-agnostic: converters (from
:mod:`repro.tools`) register a ``sniff(path) -> bool`` and a
``convert(path, entry, writer)``; PTdfGen walks the directory, matches
files to index entries by execution-name prefix, and dispatches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol

from .parser import PTdfParseError, split_fields
from .writer import PTdfWriter


@dataclass(frozen=True)
class IndexEntry:
    """One execution listed in a PTdfGen index file."""

    execution: str
    application: str
    concurrency_model: str  # e.g. "MPI", "OpenMP", "MPI+OpenMP", "sequential"
    num_processes: int
    num_threads: int
    build_timestamp: str
    run_timestamp: str

    def fields(self) -> list[str]:
        return [
            self.execution,
            self.application,
            self.concurrency_model,
            str(self.num_processes),
            str(self.num_threads),
            self.build_timestamp,
            self.run_timestamp,
        ]


def parse_index_file(path: str) -> list[IndexEntry]:
    """Parse an index file (one whitespace-separated entry per line)."""
    entries: list[IndexEntry] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            try:
                fields = split_fields(raw)
            except ValueError as exc:
                raise PTdfParseError(str(exc), path, lineno) from None
            if not fields:
                continue
            if len(fields) != 7:
                raise PTdfParseError(
                    f"index entry takes 7 fields, got {len(fields)}", path, lineno
                )
            try:
                nproc = int(fields[3])
                nthread = int(fields[4])
            except ValueError:
                raise PTdfParseError("process/thread counts must be integers", path, lineno) from None
            entries.append(
                IndexEntry(fields[0], fields[1], fields[2], nproc, nthread, fields[5], fields[6])
            )
    return entries


class Converter(Protocol):
    """A tool-output-to-PTdf converter (see repro.tools)."""

    name: str

    def sniff(self, path: str) -> bool:
        """True when this converter understands the file at *path*."""
        ...

    def convert(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        """Append records for *path* to *writer*; returns results added."""
        ...


@dataclass
class GenReport:
    """What PTdfGen did for one execution."""

    execution: str
    files: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    records: int = 0
    results: int = 0
    output_path: Optional[str] = None


class PTdfGen:
    """Drives converters over a directory of raw tool output."""

    def __init__(self, converters: Iterable[Converter]) -> None:
        self.converters = list(converters)

    def files_for(self, directory: str, entry: IndexEntry) -> list[str]:
        """Data files belonging to *entry*: the execution name followed by a
        non-alphanumeric boundary (so ``run-r1`` does not claim the files of
        ``run-r12``)."""
        out = []
        prefix = entry.execution
        for fname in sorted(os.listdir(directory)):
            if not fname.startswith(prefix):
                continue
            rest = fname[len(prefix):]
            if rest and (rest[0].isalnum() or rest[0] == "-"):
                continue  # a longer execution name, not a suffix of ours
            full = os.path.join(directory, fname)
            if os.path.isfile(full):
                out.append(full)
        return out

    def generate_one(
        self, directory: str, entry: IndexEntry, out_dir: Optional[str] = None
    ) -> tuple[PTdfWriter, GenReport]:
        """Generate PTdf for one execution; optionally write ``<exec>.ptdf``."""
        writer = PTdfWriter()
        report = GenReport(execution=entry.execution)
        writer.add_application(entry.application)
        writer.add_execution(entry.execution, entry.application)
        # Execution-level descriptive attributes from the index entry are
        # recorded on an execution-hierarchy resource.
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        writer.add_resource_attribute(exec_res, "concurrency model", entry.concurrency_model)
        writer.add_resource_attribute(exec_res, "number of processes", str(entry.num_processes))
        writer.add_resource_attribute(exec_res, "number of threads", str(entry.num_threads))
        writer.add_resource_attribute(exec_res, "build timestamp", entry.build_timestamp)
        writer.add_resource_attribute(exec_res, "run timestamp", entry.run_timestamp)
        for path in self.files_for(directory, entry):
            conv = self._converter_for(path)
            if conv is None:
                report.skipped.append(path)
                continue
            report.results += conv.convert(path, entry, writer)
            report.files.append(path)
        report.records = len(writer)
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            out_path = os.path.join(out_dir, f"{entry.execution}.ptdf")
            writer.write(out_path)
            report.output_path = out_path
        return writer, report

    def generate(
        self, directory: str, index_path: str, out_dir: Optional[str] = None
    ) -> list[GenReport]:
        """Generate PTdf for every execution in *index_path*."""
        reports = []
        for entry in parse_index_file(index_path):
            _writer, report = self.generate_one(directory, entry, out_dir)
            reports.append(report)
        return reports

    def _converter_for(self, path: str) -> Optional[Converter]:
        for conv in self.converters:
            if conv.sniff(path):
                return conv
        return None
