"""PerfTrack base resource types (paper Figure 2).

Five hierarchies::

    build/module/function/codeBlock        where in the code
    grid/machine/partition/node/processor  hardware used
    environment/module/function/codeBlock  runtime environment (dyn. libs)
    execution/process/thread               application processes/threads
    time/interval                          phase of execution

plus the non-hierarchical (single-level) types: ``application``,
``compiler``, ``preprocessor``, ``inputDeck``, ``submission``,
``operatingSystem``, ``metric`` and ``performanceTool``.

The paper notes that PerfTrack itself uses the type-extension interface to
load these at database initialisation; :func:`base_type_records` produces
exactly that PTdf.
"""

from __future__ import annotations

from .format import ResourceTypeRec

BASE_HIERARCHIES: tuple[str, ...] = (
    "build/module/function/codeBlock",
    "grid/machine/partition/node/processor",
    "environment/module/function/codeBlock",
    "execution/process/thread",
    "time/interval",
)

BASE_NONHIERARCHICAL: tuple[str, ...] = (
    "application",
    "compiler",
    "preprocessor",
    "inputDeck",
    "submission",
    "operatingSystem",
    "metric",
    "performanceTool",
)


def base_type_records() -> list[ResourceTypeRec]:
    """PTdf records declaring every base resource type."""
    return [ResourceTypeRec(t) for t in BASE_HIERARCHIES + BASE_NONHIERARCHICAL]


def all_base_type_paths() -> list[str]:
    """Every type path including hierarchy prefixes (``grid``, ``grid/machine``, ...)."""
    out: list[str] = []
    for hier in BASE_HIERARCHIES:
        parts = hier.split("/")
        for depth in range(1, len(parts) + 1):
            path = "/".join(parts[:depth])
            if path not in out:
                out.append(path)
    out.extend(BASE_NONHIERARCHICAL)
    return out
