"""PTdf writer: record objects -> text.

:class:`PTdfWriter` also offers convenience constructors that mirror the
PTdataFormat API of paper Figure 6 (``addApplication``, ``addResource``,
``addPerfResult``, ...), so converter scripts read like the paper's.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    PerfResultSeriesRec,
    Record,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
    render_record,
)


class PTdfWriter:
    """Accumulates PTdf records and serialises them.

    Records keep insertion order; the loader requires definitions before
    use (an execution before its resources, a resource before its
    attributes), which falls out naturally when converters emit in
    discovery order.
    """

    def __init__(self) -> None:
        self.records: list[Record] = []
        self._seen: set[tuple] = set()

    # -- PTdataFormat-style API (paper Figure 6) -------------------------------

    def add_application(self, name: str) -> None:
        self._add_once(ApplicationRec(name))

    def add_resource_type(self, type_path: str) -> None:
        self._add_once(ResourceTypeRec(type_path))

    def add_execution(self, name: str, application: str) -> None:
        self._add_once(ExecutionRec(name, application))

    def add_resource(
        self, name: str, type_path: str, execution: Optional[str] = None
    ) -> None:
        self._add_once(ResourceRec(name, type_path, execution))

    def add_resource_attribute(
        self, resource: str, attribute: str, value: str, attr_type: str = "string"
    ) -> None:
        self.records.append(ResourceAttributeRec(resource, attribute, str(value), attr_type))

    def add_perf_result(
        self,
        execution: str,
        resource_sets: Sequence[ResourceSet] | ResourceSet,
        tool: str,
        metric: str,
        value: float,
        units: str,
    ) -> None:
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        self.records.append(
            PerfResultRec(execution, tuple(resource_sets), tool, metric, float(value), units)
        )

    def add_perf_result_series(
        self,
        execution: str,
        resource_sets,
        tool: str,
        metric: str,
        units: str,
        start_time: float,
        bin_width: float,
        values,
    ) -> None:
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        self.records.append(
            PerfResultSeriesRec(
                execution, tuple(resource_sets), tool, metric, units,
                float(start_time), float(bin_width), tuple(values),
            )
        )

    def add_resource_constraint(self, resource1: str, resource2: str) -> None:
        self.records.append(ResourceConstraintRec(resource1, resource2))

    def extend(self, records: Iterable[Record]) -> None:
        for rec in records:
            self.records.append(rec)

    def _add_once(self, rec: Record) -> None:
        key = (type(rec).__name__,) + tuple(rec.fields())
        if key in self._seen:
            return
        self._seen.add(key)
        self.records.append(rec)

    # -- serialisation -------------------------------------------------------------

    def render(self) -> str:
        return "".join(render_record(r) + "\n" for r in self.records)

    def write(self, path: str) -> int:
        """Write to *path*; returns the number of lines written."""
        text = self.render()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(self.records)

    def __len__(self) -> int:
        return len(self.records)


def write_string(records: Iterable[Record]) -> str:
    return "".join(render_record(r) + "\n" for r in records)


def write_file(records: Iterable[Record], path: str) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(render_record(rec))
            fh.write("\n")
            count += 1
    return count
