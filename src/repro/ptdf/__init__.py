"""PTdf — the PerfTrack data format (paper Figure 6).

PTdf is a line-oriented interchange format; every piece of data loaded
into PerfTrack flows through it, including the base resource types that
initialise a new database (paper Figure 2).  This package provides the
record model, a parser, a writer, the base-type definitions, and the
``PTdfGen`` directory converter described in Section 3.3.
"""

from .format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    Record,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
    parent_name,
    split_name,
    type_of_depth,
)
from .lint import (
    Diagnostic as LintDiagnostic,
    LintContext,
    Linter,
    PTdfLintError,
    context_from_store,
    has_errors,
    lint_file,
    lint_files,
    lint_string,
)
from .parser import PTdfParseError, parse_file, parse_lines, parse_string
from .writer import PTdfWriter, write_file, write_string
from .basetypes import BASE_HIERARCHIES, BASE_NONHIERARCHICAL, base_type_records
from .ptdfgen import IndexEntry, PTdfGen, parse_index_file

__all__ = [
    "Record",
    "ApplicationRec",
    "ResourceTypeRec",
    "ExecutionRec",
    "ResourceRec",
    "ResourceAttributeRec",
    "PerfResultRec",
    "ResourceConstraintRec",
    "ResourceSet",
    "parent_name",
    "split_name",
    "type_of_depth",
    "parse_file",
    "parse_lines",
    "parse_string",
    "PTdfParseError",
    "LintDiagnostic",
    "LintContext",
    "Linter",
    "PTdfLintError",
    "context_from_store",
    "has_errors",
    "lint_file",
    "lint_files",
    "lint_string",
    "PTdfWriter",
    "write_file",
    "write_string",
    "BASE_HIERARCHIES",
    "BASE_NONHIERARCHICAL",
    "base_type_records",
    "PTdfGen",
    "IndexEntry",
    "parse_index_file",
]
