"""Schema-aware static validation of PTdf files — no database required.

``pt-lint`` (and ``ptrack lint``) run these checks before a file ever
touches a data store, catching the classes of mistake that otherwise load
silently (a typo'd resource type quietly grows the focus framework; a
mistyped units string splits one metric family in two) or fail halfway
through a load with the transaction already warm.

Rule catalogue
--------------

========  ========  =====================================================
code      severity  meaning
========  ========  =====================================================
PT000     error     line does not parse (tokeniser or record error)
PT001     error     dangling resource reference: a ResourceAttribute,
                    ResourceConstraint, resource-valued attribute or
                    PerfResult focus names a resource never declared
PT002     error     undefined resource type: a Resource's type is neither
                    a base type (paper Figure 2) nor declared by a
                    ResourceType record — the loader would silently
                    extend the focus framework
PT003     error     type-depth mismatch: a Resource's name depth differs
                    from its type-path depth (the loader refuses this)
PT004     error/    duplicate resource or execution definition; an error
          warning   when re-declared with a *different* type (the loader
                    silently keeps the first), a warning when identical
PT005     warning   duplicate (resource, attribute) definition
PT006     error     unknown execution: a Resource binding or PerfResult
                    names an execution never declared
PT007     warning   unknown application: an Execution names an
                    application with no Application record (the loader
                    auto-creates it)
PT008     warning   unit mismatch: one metric reported with two different
                    units strings, splitting the metric family
PT009     error     invalid resource name (must be ``/``-rooted)
========  ========  =====================================================

Reference checks are sequential, exactly like the loaders (per-row and
bulk alike resolve resource/execution ids while streaming the file), so a
use-before-declare that would abort a load is reported — with a pointer
to the later declaration line.  Type and application references are
order-free because the loader auto-creates both on first use.  A parse
error on one line does not stop the remaining lines from being checked.
Linting a
sequence of files threads one :class:`LintContext` through all of them,
so later files may reference resources declared by earlier ones — exactly
how ``ptrack load a.ptdf b.ptdf`` behaves.  Seed the context from an
existing store with :func:`context_from_store` to lint an incremental
load against data already in the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import get_close_matches
from typing import Any, Iterable, Optional

from .basetypes import all_base_type_paths
from .format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    PerfResultSeriesRec,
    Record,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceTypeRec,
    split_name,
)
from .parser import split_fields, _parse_record

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinned to a file and line."""

    source: str
    line: int
    severity: str  # "error" | "warning"
    code: str  # "PT000".."PT009"
    message: str
    suggestion: Optional[str] = None

    def __str__(self) -> str:
        text = f"{self.source}:{self.line}: {self.severity} {self.code}: {self.message}"
        if self.suggestion is not None:
            text = f"{text}; did you mean {self.suggestion!r}?"
        return text


class PTdfLintError(ValueError):
    """Raised by ``PTDataStore.load_*(..., lint=True)`` on lint errors."""

    def __init__(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == "error"]
        shown = "; ".join(str(d) for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(f"PTdf lint failed: {shown}{more}")


@dataclass
class LintContext:
    """Declarations visible to the linter before the file under check.

    A fresh context knows the base resource types (every store is
    initialised with them); everything else starts empty.  Linting a file
    folds its declarations back into the context, so one context threaded
    through several files models a sequential multi-file load.
    """

    types: set[str] = field(default_factory=lambda: set(all_base_type_paths()))
    resources: set[str] = field(default_factory=set)
    executions: set[str] = field(default_factory=set)
    applications: set[str] = field(default_factory=set)


def context_from_store(store: Any) -> LintContext:
    """Seed a :class:`LintContext` from an open ``PTDataStore``."""
    return LintContext(
        types=set(store._type_ids),
        resources=set(store._resource_ids),
        executions=set(store._exec_ids),
        applications=set(store._app_ids),
    )


def fold_declarations(context: LintContext, records: Iterable[Record]) -> LintContext:
    """Fold a document's declarations into *context* — no diagnostics.

    Exactly the context mutation :meth:`Linter._check` performs after
    linting the same records, so the parallel loader can compute each
    file's lint context (everything declared by the files before it)
    without linting the earlier files first: types gain every prefix of
    each ResourceType path; applications gain Application names *and*
    Execution application references (the loader auto-creates those);
    executions gain Execution names; resources gain each Resource name
    and all its ancestors.  Mutates and returns *context*.
    """
    for rec in records:
        if isinstance(rec, ApplicationRec):
            context.applications.add(rec.name)
        elif isinstance(rec, ResourceTypeRec):
            context.types.update(_type_prefixes(rec.name))
        elif isinstance(rec, ExecutionRec):
            context.executions.add(rec.name)
            context.applications.add(rec.application)
        elif isinstance(rec, ResourceRec):
            context.resources.update(_ancestors(rec.name))
    return context


def _closest(name: str, candidates: Iterable[str]) -> Optional[str]:
    """Best did-you-mean candidate for *name*, or None."""
    pool: dict[str, str] = {}
    for cand in candidates:
        pool.setdefault(cand.lower(), cand)
    matches = get_close_matches(name.lower(), list(pool), n=1, cutoff=0.6)
    return pool[matches[0]] if matches else None


def _type_prefixes(type_path: str) -> list[str]:
    """Every prefix of a type path (``a/b/c`` -> ``a``, ``a/b``, ``a/b/c``)."""
    segments = [s for s in type_path.split("/") if s]
    return ["/".join(segments[: d + 1]) for d in range(len(segments))]


def _ancestors(name: str) -> list[str]:
    """The resource name and every ancestor (``/a/b`` -> ``/a``, ``/a/b``)."""
    try:
        parts = split_name(name)
    except ValueError:
        return [name]
    return ["/" + "/".join(parts[: d + 1]) for d in range(len(parts))]


class Linter:
    """Lint PTdf documents against one (mutating) :class:`LintContext`."""

    def __init__(self, context: Optional[LintContext] = None) -> None:
        self.context = context if context is not None else LintContext()
        #: units seen per metric name: metric -> (units, source, line)
        self._metric_units: dict[str, tuple[str, str, int]] = {}
        #: "resource\x00attribute" -> line first set
        self._seen_attr: dict[str, int] = {}
        # per-file working state (reset by _check)
        self._resources: set[str] = set()
        self._executions: set[str] = set()
        self._all_resources: dict[str, int] = {}
        self._all_executions: dict[str, int] = {}

    # ------------------------------------------------------------------ front ends

    def lint_lines(
        self, lines: Iterable[str], source: str = "<string>"
    ) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        records: list[tuple[int, Record]] = []
        for lineno, raw in enumerate(lines, start=1):
            try:
                fields = split_fields(raw)
            except ValueError as exc:
                diagnostics.append(self._parse_error(source, lineno, exc))
                continue
            if not fields:
                continue
            try:
                records.append((lineno, _parse_record(fields)))
            except ValueError as exc:
                diagnostics.append(self._parse_error(source, lineno, exc))
        diagnostics.extend(self._check(records, source))
        diagnostics.sort(key=lambda d: d.line)
        return diagnostics

    def lint_string(self, text: str, source: str = "<string>") -> list[Diagnostic]:
        return self.lint_lines(text.split("\n"), source)

    def lint_file(self, path: str) -> list[Diagnostic]:
        with open(path, "r", encoding="utf-8") as fh:
            return self.lint_lines(fh, source=str(path))

    # ------------------------------------------------------------------ internals

    @staticmethod
    def _parse_error(source: str, lineno: int, exc: ValueError) -> Diagnostic:
        message = str(exc)
        fieldno = getattr(exc, "field", None)
        if fieldno is not None:
            message = f"{message} (field {fieldno})"
        return Diagnostic(source, lineno, "error", "PT000", message)

    def _check(
        self, records: list[tuple[int, Record]], source: str
    ) -> list[Diagnostic]:
        ctx = self.context
        out: list[Diagnostic] = []

        # Pass 1: collect whole-file declarations.  Types and applications
        # are order-free (the loader auto-creates both on first use), and
        # the full resource/execution maps let sequential-order misses say
        # "declared later at line N" instead of just "undeclared".
        decl_types = set(ctx.types)
        decl_applications = set(ctx.applications)
        explicit_apps = set(ctx.applications)
        all_resources: dict[str, int] = {}  # name (incl. ancestors) -> line
        all_executions: dict[str, int] = {}
        for lineno, rec in records:
            if isinstance(rec, ApplicationRec):
                decl_applications.add(rec.name)
                explicit_apps.add(rec.name)
            elif isinstance(rec, ResourceTypeRec):
                decl_types.update(_type_prefixes(rec.name))
            elif isinstance(rec, ExecutionRec):
                all_executions.setdefault(rec.name, lineno)
                decl_applications.add(rec.application)
            elif isinstance(rec, ResourceRec):
                # the loader creates every missing ancestor alongside
                for name in _ancestors(rec.name):
                    all_resources.setdefault(name, lineno)

        # Pass 2: per-record checks, in line order.  Resource and execution
        # references must already be declared: the loaders (per-row and
        # bulk alike) resolve them while streaming the file.
        self._resources = set(ctx.resources)
        self._executions = set(ctx.executions)
        self._all_resources = all_resources
        self._all_executions = all_executions
        first_resource: dict[str, tuple[int, str]] = {}  # name -> (line, type)
        first_execution: dict[str, int] = {}
        for lineno, rec in records:
            if isinstance(rec, ResourceTypeRec):
                continue
            if isinstance(rec, ExecutionRec):
                prev = first_execution.get(rec.name)
                if prev is not None:
                    out.append(
                        Diagnostic(
                            source, lineno, "warning", "PT004",
                            f"duplicate Execution {rec.name!r} "
                            f"(first declared at line {prev})",
                        )
                    )
                else:
                    first_execution[rec.name] = lineno
                self._executions.add(rec.name)
                if rec.application not in explicit_apps:
                    out.append(
                        Diagnostic(
                            source, lineno, "warning", "PT007",
                            f"Execution {rec.name!r} names application "
                            f"{rec.application!r} with no Application record",
                            suggestion=_closest(rec.application, explicit_apps),
                        )
                    )
            elif isinstance(rec, ResourceRec):
                out.extend(
                    self._check_resource(
                        rec, source, lineno, decl_types, first_resource
                    )
                )
                self._resources.update(_ancestors(rec.name))
            elif isinstance(rec, ResourceAttributeRec):
                out.extend(
                    self._ref(rec.resource, "ResourceAttribute", source, lineno)
                )
                if rec.attr_type == "resource":
                    out.extend(
                        self._ref(rec.value, "resource-valued attribute", source,
                                  lineno)
                    )
                key = f"{rec.resource}\x00{rec.attribute}"
                prev_line = self._seen_attr.get(key)
                if prev_line is not None:
                    out.append(
                        Diagnostic(
                            source, lineno, "warning", "PT005",
                            f"duplicate attribute {rec.attribute!r} on "
                            f"{rec.resource!r} (first set at line {prev_line})",
                        )
                    )
                else:
                    self._seen_attr[key] = lineno
            elif isinstance(rec, ResourceConstraintRec):
                out.extend(
                    self._ref(rec.resource1, "ResourceConstraint", source, lineno)
                )
                out.extend(
                    self._ref(rec.resource2, "ResourceConstraint", source, lineno)
                )
            elif isinstance(rec, (PerfResultRec, PerfResultSeriesRec)):
                if rec.execution not in self._executions:
                    later = self._all_executions.get(rec.execution)
                    message = f"PerfResult for unknown execution {rec.execution!r}"
                    if later is not None:
                        message = (
                            f"PerfResult uses execution {rec.execution!r} "
                            f"declared later at line {later} (PTdf loads "
                            f"sequentially)"
                        )
                    out.append(
                        Diagnostic(
                            source, lineno, "error", "PT006", message,
                            suggestion=None if later is not None else _closest(
                                rec.execution, self._executions
                            ),
                        )
                    )
                for rset in rec.resource_sets:
                    for name in rset.names:
                        out.extend(
                            self._ref(name, f"{rset.set_type} focus", source,
                                      lineno)
                        )
                seen = self._metric_units.get(rec.metric)
                if seen is not None and seen[0] != rec.units:
                    out.append(
                        Diagnostic(
                            source, lineno, "warning", "PT008",
                            f"metric {rec.metric!r} reported in {rec.units!r} "
                            f"but {seen[0]!r} at {seen[1]}:{seen[2]} — this "
                            f"splits the metric family",
                        )
                    )
                elif seen is None:
                    self._metric_units[rec.metric] = (rec.units, source, lineno)

        decl_resources = self._resources
        decl_executions = self._executions
        # Fold this file's declarations into the context for the next file.
        ctx.types = decl_types
        ctx.resources = decl_resources
        ctx.executions = decl_executions
        ctx.applications = decl_applications
        return out

    def _check_resource(
        self,
        rec: ResourceRec,
        source: str,
        lineno: int,
        decl_types: set[str],
        first_resource: dict[str, tuple[int, str]],
    ) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        try:
            depth = len(split_name(rec.name))
        except ValueError as exc:
            out.append(Diagnostic(source, lineno, "error", "PT009", str(exc)))
            depth = None
        if rec.type not in decl_types:
            out.append(
                Diagnostic(
                    source, lineno, "error", "PT002",
                    f"Resource {rec.name!r} has undefined type {rec.type!r}",
                    suggestion=_closest(rec.type, decl_types),
                )
            )
        elif depth is not None:
            type_depth = len([s for s in rec.type.split("/") if s])
            if type_depth != depth:
                out.append(
                    Diagnostic(
                        source, lineno, "error", "PT003",
                        f"Resource {rec.name!r} has depth {depth} but type "
                        f"{rec.type!r} has depth {type_depth}",
                    )
                )
        if rec.execution is not None and rec.execution not in self._executions:
            later = self._all_executions.get(rec.execution)
            if later is not None:
                message = (
                    f"Resource {rec.name!r} uses execution {rec.execution!r} "
                    f"declared later at line {later} (PTdf loads sequentially)"
                )
                suggestion = None
            else:
                message = (
                    f"Resource {rec.name!r} bound to unknown execution "
                    f"{rec.execution!r}"
                )
                suggestion = _closest(rec.execution, self._executions)
            out.append(
                Diagnostic(source, lineno, "error", "PT006", message,
                           suggestion=suggestion)
            )
        prev = first_resource.get(rec.name)
        if prev is not None:
            prev_line, prev_type = prev
            if prev_type != rec.type:
                out.append(
                    Diagnostic(
                        source, lineno, "error", "PT004",
                        f"resource {rec.name!r} re-declared with type "
                        f"{rec.type!r}; line {prev_line} declared it as "
                        f"{prev_type!r} (the loader keeps the first)",
                    )
                )
            else:
                out.append(
                    Diagnostic(
                        source, lineno, "warning", "PT004",
                        f"duplicate Resource {rec.name!r} "
                        f"(first declared at line {prev_line})",
                    )
                )
        else:
            first_resource[rec.name] = (lineno, rec.type)
        return out

    def _ref(
        self, name: str, what: str, source: str, lineno: int
    ) -> list[Diagnostic]:
        if name in self._resources:
            return []
        later = self._all_resources.get(name)
        if later is not None:
            return [
                Diagnostic(
                    source, lineno, "error", "PT001",
                    f"{what} references resource {name!r} declared later at "
                    f"line {later} (PTdf loads sequentially)",
                )
            ]
        return [
            Diagnostic(
                source, lineno, "error", "PT001",
                f"{what} references undeclared resource {name!r}",
                suggestion=_closest(name, self._resources),
            )
        ]


# -------------------------------------------------------------------- module API


def lint_string(
    text: str, source: str = "<string>", context: Optional[LintContext] = None
) -> list[Diagnostic]:
    """Lint a PTdf document held in a string."""
    return Linter(context).lint_string(text, source)


def lint_file(path: str, context: Optional[LintContext] = None) -> list[Diagnostic]:
    """Lint one PTdf file from disk."""
    return Linter(context).lint_file(path)


def lint_files(
    paths: Iterable[str], context: Optional[LintContext] = None
) -> list[Diagnostic]:
    """Lint several files as one sequential load (shared declarations)."""
    linter = Linter(context)
    out: list[Diagnostic] = []
    for path in paths:
        out.extend(linter.lint_file(path))
    return out


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is a hard error (not a warning)."""
    return any(d.severity == "error" for d in diagnostics)
