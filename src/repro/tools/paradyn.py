"""Paradyn export -> PTdf converter (paper Section 4.3, Figures 10/11).

The three steps the paper describes:

1. **Hierarchy mapping** (Figure 11):

   * Paradyn ``/Code/<module>/<function>`` maps to PerfTrack's *build*
     hierarchy, or to the *environment* hierarchy when the module is
     recognisably a dynamic library (``*.so``); ``DEFAULT_MODULE`` (and
     anything else ambiguous) defaults to *build*.
   * Paradyn ``/Machine/<node>/<process>[/<thread>]`` maps to the
     *execution* hierarchy; the machine node is stored as a resource
     attribute of the process resource.
   * Paradyn ``/SyncObject/...`` gets a brand-new top-level PerfTrack
     hierarchy ``syncObject/syncClass/syncInstance`` via the type
     extension interface.
   * Paradyn's *global phase* maps to the top of the *time* hierarchy;
     histogram bins become ``time/interval`` resources with start/end
     attributes (local phases, when present, sit between).

2. **Parsing** the exported files: resources list, histogram index, and
   histogram files (header + one value per bin).

3. **Loading**: each non-``nan`` bin becomes one performance result whose
   context is the mapped focus plus the bin resource.  ``nan`` bins are
   dropped: "We do not record 'nan' entries as performance results."
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Optional

from ..ptdf.format import ResourceSet
from ..ptdf.ptdfgen import IndexEntry
from ..ptdf.writer import PTdfWriter

SYNC_TYPE_ROOT = "syncObject"

_HDR_RE = re.compile(r"^#\s*(\w+):\s*(.+?)\s*$")


@dataclass
class _Mapping:
    """Resolved PerfTrack resources for one Paradyn resource path."""

    names: list[tuple[str, str]]  # (resource name, type path), root-first
    attributes: list[tuple[str, str, str]]  # (resource, attr, value)


class ParadynConverter:
    """PTdfGen converter for Paradyn session exports.

    ``bins_as`` selects how histograms are stored:

    * ``"results"`` (default, the paper's prototype): one scalar
      performance result per non-nan bin, each with its own
      ``time/interval`` resource;
    * ``"series"`` (the paper's Section-6 proposal, implemented here):
      one *vector* performance result per histogram — "to avoid creating
      a new performance result for each bin in a Paradyn histogram file".
    """

    name = "paradyn"
    tool_name = "Paradyn"

    def __init__(self, bins_as: str = "results") -> None:
        if bins_as not in ("results", "series"):
            raise ValueError(f"bins_as must be 'results' or 'series', got {bins_as!r}")
        self.bins_as = bins_as

    def sniff(self, path: str) -> bool:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                head = fh.read(100)
        except OSError:
            return False
        return head.startswith(
            ("# Paradyn histogram index", "# Paradyn histogram export")
        )

    # ------------------------------------------------------------- mapping

    def map_resource(self, entry: IndexEntry, paradyn_path: str) -> Optional[_Mapping]:
        """Map one Paradyn resource path to PerfTrack resources.

        Returns None for pure hierarchy roots (/Code, /Machine, ...).
        """
        parts = [p for p in paradyn_path.split("/") if p]
        if not parts:
            return None
        root, rest = parts[0], parts[1:]
        if root == "Code":
            if not rest:
                return None
            module = rest[0]
            is_dynamic = module.endswith((".so", ".dylib", ".sl")) or ".so." in module
            hierarchy = "environment" if is_dynamic else "build"
            top = f"/{entry.application}-dyn" if is_dynamic else f"/{entry.application}"
            names = [top]
            types = [hierarchy]
            names.append(f"{top}/{module}")
            types.append(f"{hierarchy}/module")
            if len(rest) >= 2:
                names.append(f"{top}/{module}/{rest[1]}")
                types.append(f"{hierarchy}/module/function")
            if len(rest) >= 3:
                names.append(f"{top}/{module}/{rest[1]}/{rest[2]}")
                types.append(f"{hierarchy}/module/function/codeBlock")
            return _Mapping(names=list(zip(names, types)), attributes=[])  # type: ignore[arg-type]
        if root == "Machine":
            if len(rest) < 2:
                return None  # a bare node is recorded only as an attribute
            node, process = rest[0], rest[1]
            exec_res = f"/{entry.execution}"
            proc_res = f"{exec_res}/{process}"
            names = [
                (exec_res, "execution"),
                (proc_res, "execution/process"),
            ]
            attrs = [(proc_res, "machine node", node)]
            if len(rest) >= 3:
                names.append((f"{proc_res}/{rest[2]}", "execution/process/thread"))
            return _Mapping(names=names, attributes=attrs)  # type: ignore[arg-type]
        if root == "SyncObject":
            names = [("/syncObjects", SYNC_TYPE_ROOT)]
            if len(rest) >= 1:
                names.append((f"/syncObjects/{rest[0]}", f"{SYNC_TYPE_ROOT}/syncClass"))
            if len(rest) >= 2:
                names.append(
                    (
                        f"/syncObjects/{rest[0]}/{rest[1]}",
                        f"{SYNC_TYPE_ROOT}/syncClass/syncInstance",
                    )
                )
            return _Mapping(names=names, attributes=[])  # type: ignore[arg-type]
        return None

    def _declare(self, entry: IndexEntry, mapping: _Mapping, writer: PTdfWriter) -> list[str]:
        """Emit Resource records for a mapping; returns leaf-most names."""
        for name, type_path in mapping.names:  # type: ignore[misc]
            execution = entry.execution if type_path.startswith("execution") else None
            writer.add_resource(name, type_path, execution)
        for res, attr, value in mapping.attributes:
            writer.add_resource_attribute(res, attr, value)
        return [name for name, _t in mapping.names]  # type: ignore[misc]

    # ------------------------------------------------------------- conversion

    def convert(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            head = fh.read(100)
        if head.startswith("# Paradyn histogram index"):
            return self.convert_index(path, entry, writer)
        return self.convert_histogram(path, entry, writer)

    def convert_resources_file(
        self, path: str, entry: IndexEntry, writer: PTdfWriter
    ) -> int:
        """Load every Paradyn resource up front (types + resources)."""
        writer.add_resource_type(f"{SYNC_TYPE_ROOT}/syncClass/syncInstance")
        count = 0
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                mapping = self.map_resource(entry, line)
                if mapping is not None:
                    self._declare(entry, mapping, writer)
                    count += 1
        return count

    def convert_index(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        """Convert every histogram listed in an index file."""
        directory = os.path.dirname(path)
        total = 0
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                hist_name = line.split()[0]
                hist_path = os.path.join(directory, hist_name)
                if os.path.exists(hist_path):
                    total += self.convert_histogram(hist_path, entry, writer)
        return total

    def convert_histogram(
        self, path: str, entry: IndexEntry, writer: PTdfWriter, phase: Optional[str] = None
    ) -> int:
        """One histogram file: header, then one result per non-nan bin."""
        metric = None
        focus = ""
        bin_width = 1.0
        start_time = 0.0
        file_phase: Optional[str] = None
        values: list[Optional[float]] = []
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    m = _HDR_RE.match(line)
                    if m:
                        key, val = m.group(1), m.group(2)
                        if key == "metric":
                            metric = val
                        elif key == "focus":
                            focus = val
                        elif key == "binWidth":
                            bin_width = float(val)
                        elif key == "startTime":
                            start_time = float(val)
                        elif key == "phase":
                            file_phase = val
                    continue
                if line.lower() == "nan":
                    values.append(None)
                else:
                    try:
                        values.append(float(line))
                    except ValueError:
                        values.append(None)
        if metric is None:
            return 0
        if phase is None and file_phase is not None:
            phase = file_phase
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        # Focus resources.
        focus_names: list[str] = [exec_res]
        for part in focus.split(","):
            part = part.strip()
            if not part:
                continue
            mapping = self.map_resource(entry, part)
            if mapping is None:
                continue
            declared = self._declare(entry, mapping, writer)
            if declared:
                focus_names.append(declared[-1])
        # Time hierarchy: global phase at the top, bins as intervals.
        phase_label = phase or "global"
        phase_res = f"/{entry.execution}-{phase_label}"
        if phase is None:
            writer.add_resource(phase_res, "time")
        else:
            writer.add_resource(f"/{entry.execution}-global", "time")
            writer.add_resource_type("time/interval/interval")
            phase_res = f"/{entry.execution}-global/{phase}"
            writer.add_resource(phase_res, "time/interval")
        if self.bins_as == "series":
            # One vector result for the whole histogram; the time context
            # is the phase resource, bin bounds live with the values.
            if not any(v is not None for v in values):
                return 0
            writer.add_perf_result_series(
                entry.execution,
                ResourceSet(tuple(focus_names + [phase_res])),
                self.tool_name,
                metric,
                "paradyn units",
                start_time,
                bin_width,
                values,
            )
            return 1
        count = 0
        bin_type = "time/interval" if phase is None else "time/interval/interval"
        for i, value in enumerate(values):
            if value is None:
                continue  # nan bins are not recorded
            bin_res = f"{phase_res}/bin_{i}"
            writer.add_resource(bin_res, bin_type)
            writer.add_resource_attribute(
                bin_res, "start time", f"{start_time + i * bin_width:.6f}"
            )
            writer.add_resource_attribute(
                bin_res, "end time", f"{start_time + (i + 1) * bin_width:.6f}"
            )
            writer.add_perf_result(
                entry.execution,
                ResourceSet(tuple(focus_names + [bin_res])),
                self.tool_name,
                metric,
                value,
                "paradyn units",
            )
            count += 1
        return count
