"""SMG2000 benchmark output -> PTdf converter.

Parses the native SMG2000 run output: driver parameters become execution
attributes; the per-phase wall/cpu clock times, iteration count and final
residual norm become the "eight data values on the level of the whole
execution" (paper Section 4.2).  The paper notes implementing this parser
"took approximately one hour, using the supplied benchmark parsing code as
a model" — it is intentionally small.

A PMAPI block embedded in the same file is left to
:class:`repro.tools.pmapi.PMAPIConverter` (PTdfGen runs every matching
converter... in our pipeline the SMG converter delegates explicitly).
"""

from __future__ import annotations

import re

from ..ptdf.format import ResourceSet
from ..ptdf.ptdfgen import IndexEntry
from ..ptdf.writer import PTdfWriter
from .pmapi import PMAPIConverter, PMAPI_HEADER

_DRIVER_RE = re.compile(r"^\s{2}\(?([^=]+?)\)?\s*=\s*(.+)$")
_TIME_RE = re.compile(r"^\s*(wall|cpu) clock time\s*=\s*([0-9.eE+-]+)\s*seconds")
_PHASE_RE = re.compile(r"^(Struct Interface|SMG Setup|SMG Solve):\s*$")
_ITER_RE = re.compile(r"^Iterations\s*=\s*(\d+)")
_RESID_RE = re.compile(r"^Final Relative Residual Norm\s*=\s*([0-9.eE+-]+)")


class SMGConverter:
    """PTdfGen converter for SMG2000 output files."""

    name = "smg2000"
    tool_name = "SMG2000 benchmark"

    def sniff(self, path: str) -> bool:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                head = fh.read(200)
        except OSError:
            return False
        return head.startswith("Running with these driver parameters")

    def convert(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        count = 0
        phase = None
        in_driver = False
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("Running with these driver parameters"):
                in_driver = True
                continue
            if in_driver:
                m = _DRIVER_RE.match(line)
                if m:
                    key = m.group(1).strip().strip("()")
                    writer.add_resource_attribute(
                        exec_res, f"driver {key}", m.group(2).strip().strip("()")
                    )
                    continue
                in_driver = False
            pm = _PHASE_RE.match(line)
            if pm:
                phase = pm.group(1)
                continue
            tm = _TIME_RE.match(line)
            if tm and phase is not None:
                kind = "Wall time" if tm.group(1) == "wall" else "CPU time"
                writer.add_perf_result(
                    entry.execution,
                    ResourceSet((exec_res,)),
                    self.tool_name,
                    f"{phase} {kind}",
                    float(tm.group(2)),
                    "seconds",
                )
                count += 1
                continue
            im = _ITER_RE.match(line)
            if im:
                writer.add_perf_result(
                    entry.execution,
                    ResourceSet((exec_res,)),
                    self.tool_name,
                    "Iterations",
                    float(im.group(1)),
                    "count",
                )
                count += 1
                continue
            rm = _RESID_RE.match(line)
            if rm:
                writer.add_perf_result(
                    entry.execution,
                    ResourceSet((exec_res,)),
                    self.tool_name,
                    "Final Relative Residual Norm",
                    float(rm.group(1)),
                    "relative",
                )
                count += 1
                continue
            if line.startswith(PMAPI_HEADER):
                # Embedded hardware-counter block (Figure 7's lower half).
                block = "\n".join(lines[i:])
                count += PMAPIConverter().convert_text(block, entry, writer)
                break
        return count
