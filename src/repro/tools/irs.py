"""IRS benchmark output -> PTdf converter.

Handles the two IRS file kinds: the run summary (whole-program metrics)
and the per-metric function timing tables.  Results are whole-program,
cumulative over all processes (paper Section 4.1), so the context of each
function-level result is {execution resource, function resource}; summary
metrics use the execution resource alone.  Inapplicable cells (``-``) are
skipped, which is why per-execution result counts vary slightly.
"""

from __future__ import annotations

import os
import re
from typing import Optional

from ..ptdf.ptdfgen import IndexEntry
from ..ptdf.format import ResourceSet
from ..ptdf.writer import PTdfWriter

_TABLE_BANNER = "IRS function timing report"
_SUMMARY_BANNER = "IRS Implicit Radiation Solver"

_METRIC_LINE = re.compile(r"^metric:\s*(.+?)\s*\((.+?)\)\s*$")
_PROC_LINE = re.compile(r"^processes:\s*(\d+)\s*$")
_MACHINE_LINE = re.compile(r"^machine:\s*(/\S+)\s*$")

#: Whole-run summary lines worth storing: label -> (metric name, units).
_SUMMARY_METRICS = {
    "wall clock time": ("Wall time", "seconds"),
    "total CPU time": ("CPU time", "seconds"),
    "timestep iterations": ("Iterations", "count"),
    "final energy error": ("Energy error", "relative"),
    "memory high water": ("Memory high water mark", "MB"),
}

STATS = ("aggregate", "avg", "max", "min")


def _function_resource(entry: IndexEntry, func: str) -> str:
    """Function resources live in the build hierarchy: /<app>/src/<func>."""
    return f"/{entry.application}/src/{func}"


class IRSConverter:
    """PTdfGen converter for IRS output files."""

    name = "irs"
    tool_name = "IRS benchmark"

    def sniff(self, path: str) -> bool:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                head = fh.read(400)
        except OSError:
            return False
        return _TABLE_BANNER in head or _SUMMARY_BANNER in head

    def convert(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        if _SUMMARY_BANNER in text[:400]:
            return self._convert_summary(text, entry, writer)
        return self._convert_table(text, entry, writer)

    # -- run summary ------------------------------------------------------------

    def _convert_summary(self, text: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        context = [exec_res]
        for line in text.splitlines():
            if line.startswith("machine resource"):
                machine = line.partition("=")[2].strip()
                if machine.startswith("/"):
                    writer.add_resource(machine, "grid/machine")
                    context.append(machine)
                break
        count = 0
        for line in text.splitlines():
            if "=" not in line:
                continue
            label, _, rest = line.partition("=")
            label = label.strip()
            if label not in _SUMMARY_METRICS:
                continue
            metric, units = _SUMMARY_METRICS[label]
            token = rest.strip().split()[0]
            try:
                value = float(token)
            except ValueError:
                continue
            writer.add_perf_result(
                entry.execution,
                ResourceSet(tuple(context)),
                self.tool_name,
                metric,
                value,
                units,
            )
            count += 1
        return count

    # -- function tables ------------------------------------------------------------

    def _convert_table(self, text: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        metric: Optional[str] = None
        units = ""
        in_body = False
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        machine_res: Optional[str] = None
        count = 0
        for line in text.splitlines():
            m = _METRIC_LINE.match(line)
            if m:
                metric, units = m.group(1), m.group(2)
                continue
            mm = _MACHINE_LINE.match(line)
            if mm:
                machine_res = mm.group(1)
                writer.add_resource(machine_res, "grid/machine")
                continue
            if _PROC_LINE.match(line):
                continue
            if line.startswith("---"):
                in_body = True
                continue
            if not in_body or not line.strip() or metric is None:
                continue
            fields = line.split()
            if len(fields) != 1 + len(STATS):
                continue
            func = fields[0]
            func_res = _function_resource(entry, func)
            emitted_any = False
            for stat, token in zip(STATS, fields[1:]):
                if token == "-":
                    continue
                try:
                    value = float(token)
                except ValueError:
                    continue
                if not emitted_any:
                    writer.add_resource(
                        f"/{entry.application}", "build"
                    )
                    writer.add_resource(
                        f"/{entry.application}/src", "build/module"
                    )
                    writer.add_resource(func_res, "build/module/function")
                    emitted_any = True
                names = [exec_res, func_res]
                if machine_res is not None:
                    names.append(machine_res)
                writer.add_perf_result(
                    entry.execution,
                    ResourceSet(tuple(names)),
                    self.tool_name,
                    f"{metric} ({stat})",
                    value,
                    units,
                )
                count += 1
        return count


def convert_directory(
    directory: str, entry: IndexEntry, writer: PTdfWriter
) -> int:
    """Convert every IRS file for one execution in *directory*."""
    conv = IRSConverter()
    total = 0
    for fname in sorted(os.listdir(directory)):
        path = os.path.join(directory, fname)
        if fname.startswith(entry.execution) and conv.sniff(path):
            total += conv.convert(path, entry, writer)
    return total
