"""PMAPI hardware-counter output -> PTdf converter.

Each rank's counter totals become one performance result per counter with
the context {execution, process resource}; process resources are created
in the execution hierarchy on first sight.
"""

from __future__ import annotations

from ..ptdf.format import ResourceSet
from ..ptdf.ptdfgen import IndexEntry
from ..ptdf.writer import PTdfWriter

PMAPI_HEADER = "PMAPI hardware counter report"


class PMAPIConverter:
    """PTdfGen converter for PMAPI counter reports."""

    name = "pmapi"
    tool_name = "PMAPI"

    def sniff(self, path: str) -> bool:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                head = fh.read(200)
        except OSError:
            return False
        return head.startswith(PMAPI_HEADER)

    def convert(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            return self.convert_text(fh.read(), entry, writer)

    def convert_text(self, text: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        counters: list[str] = []
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        count = 0
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith(PMAPI_HEADER) or line.startswith("ranks:"):
                continue
            if line.startswith("counters:"):
                counters = line.split(":", 1)[1].split()
                continue
            if line.startswith("rank"):
                continue
            fields = line.split()
            if not counters or len(fields) != len(counters) + 1:
                continue
            try:
                rank = int(fields[0])
                values = [float(v) for v in fields[1:]]
            except ValueError:
                continue
            proc_res = f"{exec_res}/p{rank}"
            writer.add_resource(proc_res, "execution/process", entry.execution)
            for counter, value in zip(counters, values):
                writer.add_perf_result(
                    entry.execution,
                    ResourceSet((exec_res, proc_res)),
                    self.tool_name,
                    counter,
                    value,
                    "count",
                )
                count += 1
        return count
