"""mpiP profile -> PTdf converter (paper Section 4.2).

Sections handled:

* **MPI Time** — per-task AppTime/MPITime (context: {execution, process});
  the ``*`` row lands on the execution alone.
* **Callsites** — builds the resource map: the MPI call becomes an
  ``environment/module/function`` resource (a dynamically linked library
  function), the parent function a ``build/module/function`` resource,
  and the callsite itself a ``codeBlock`` under the parent.
* **Aggregate Time** and **Callsite Time statistics** — each value gets
  *two* resource sets: a primary context (execution [, process], callsite
  codeBlock, MPI function) and a ``parent`` context naming the calling
  function.  This is the Section 4.2 modification: "We decided to modify
  PerfTrack to accommodate multiple Resource Sets for each performance
  result ... This allows us to record the caller and callee for each
  value, so we have no loss of granularity."
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..ptdf.format import ResourceSet
from ..ptdf.ptdfgen import IndexEntry
from ..ptdf.writer import PTdfWriter

_SECTION_RE = re.compile(r"^@---\s*(.+?)\s*-{3,}")


@dataclass(frozen=True)
class Callsite:
    site: int
    file: str
    line: int
    caller: str
    mpi_call: str  # without the MPI_ prefix, as mpiP prints it


class MpiPConverter:
    """PTdfGen converter for mpiP reports."""

    name = "mpip"
    tool_name = "mpiP"

    def __init__(self, metric_naming: str = "generic") -> None:
        """``metric_naming`` controls callsite-statistic metric names:

        * ``"generic"`` (default): ``Call time (mean)`` etc. — the MPI
          function is a *resource*, keeping the metric table small;
        * ``"per-call"``: ``MPI_Allreduce time (mean)`` etc. — one metric
          family per MPI function, the naming style that gives the paper's
          Table 1 its 259-metric SMG-UV row.
        """
        if metric_naming not in ("generic", "per-call"):
            raise ValueError(
                f"metric_naming must be 'generic' or 'per-call', got {metric_naming!r}"
            )
        self.metric_naming = metric_naming

    def _stat_metric(self, site: Callsite, label: str) -> str:
        if self.metric_naming == "per-call":
            return f"MPI_{site.mpi_call} {label}"
        return f"Call {label}"

    def sniff(self, path: str) -> bool:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                head = fh.read(100)
        except OSError:
            return False
        return head.startswith("@ mpiP")

    # -- resource naming -------------------------------------------------------

    @staticmethod
    def _mpi_fn_resource(call: str) -> str:
        return f"/libmpi/mpi/MPI_{call}"

    @staticmethod
    def _caller_resource(entry: IndexEntry, site: Callsite) -> str:
        return f"/{entry.application}/{site.file}/{site.caller}"

    @classmethod
    def _callsite_resource(cls, entry: IndexEntry, site: Callsite) -> str:
        return f"{cls._caller_resource(entry, site)}/site_{site.site}_line_{site.line}"

    def _declare_site_resources(
        self, entry: IndexEntry, site: Callsite, writer: PTdfWriter
    ) -> None:
        writer.add_resource("/libmpi", "environment")
        writer.add_resource("/libmpi/mpi", "environment/module")
        writer.add_resource(self._mpi_fn_resource(site.mpi_call), "environment/module/function")
        writer.add_resource(f"/{entry.application}", "build")
        writer.add_resource(f"/{entry.application}/{site.file}", "build/module")
        writer.add_resource(self._caller_resource(entry, site), "build/module/function")
        cs = self._callsite_resource(entry, site)
        writer.add_resource(cs, "build/module/function/codeBlock")
        writer.add_resource_attribute(cs, "line", str(site.line))

    # -- parsing -----------------------------------------------------------------

    def convert(self, path: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        return self.convert_text(text, entry, writer)

    def convert_text(self, text: str, entry: IndexEntry, writer: PTdfWriter) -> int:
        exec_res = f"/{entry.execution}"
        writer.add_resource(exec_res, "execution", entry.execution)
        section = None
        sites: dict[int, Callsite] = {}
        count = 0
        for line in text.splitlines():
            m = _SECTION_RE.match(line)
            if m:
                section = m.group(1)
                continue
            if line.startswith("@") or not line.strip():
                continue
            if section is None:
                continue
            if section.startswith("MPI Time"):
                count += self._task_row(line, entry, exec_res, writer)
            elif section.startswith("Callsites"):
                self._callsite_row(line, sites)
            elif section.startswith("Aggregate Time"):
                count += self._aggregate_row(line, entry, exec_res, sites, writer)
            elif section.startswith("Callsite Time statistics"):
                count += self._stat_row(line, entry, exec_res, sites, writer)
        return count

    def _task_row(
        self, line: str, entry: IndexEntry, exec_res: str, writer: PTdfWriter
    ) -> int:
        fields = line.split()
        if len(fields) != 4 or fields[0] in ("Task",):
            return 0
        task, app_t, mpi_t, _pct = fields
        try:
            app_v = float(app_t)
            mpi_v = float(mpi_t)
        except ValueError:
            return 0
        if task == "*":
            context = ResourceSet((exec_res,))
        else:
            try:
                rank = int(task)
            except ValueError:
                return 0
            proc_res = f"{exec_res}/p{rank}"
            writer.add_resource(proc_res, "execution/process", entry.execution)
            context = ResourceSet((exec_res, proc_res))
        writer.add_perf_result(
            entry.execution, context, self.tool_name, "Application time", app_v, "seconds"
        )
        writer.add_perf_result(
            entry.execution, context, self.tool_name, "MPI time", mpi_v, "seconds"
        )
        return 2

    def _callsite_row(self, line: str, sites: dict[int, Callsite]) -> None:
        fields = line.split()
        if len(fields) != 6 or fields[0] in ("ID",):
            return
        try:
            sid = int(fields[0])
            lineno = int(fields[3])
        except ValueError:
            return
        sites[sid] = Callsite(sid, fields[2], lineno, fields[4], fields[5])

    def _contexts(
        self,
        entry: IndexEntry,
        exec_res: str,
        site: Callsite,
        writer: PTdfWriter,
        rank: int | None,
    ) -> tuple[ResourceSet, ResourceSet]:
        self._declare_site_resources(entry, site, writer)
        primary_names = [
            exec_res,
            self._callsite_resource(entry, site),
            self._mpi_fn_resource(site.mpi_call),
        ]
        if rank is not None:
            proc_res = f"{exec_res}/p{rank}"
            writer.add_resource(proc_res, "execution/process", entry.execution)
            primary_names.insert(1, proc_res)
        primary = ResourceSet(tuple(primary_names))
        parent = ResourceSet((self._caller_resource(entry, site),), "parent")
        return primary, parent

    def _aggregate_row(
        self,
        line: str,
        entry: IndexEntry,
        exec_res: str,
        sites: dict[int, Callsite],
        writer: PTdfWriter,
    ) -> int:
        fields = line.split()
        if len(fields) != 5 or fields[0] in ("Call",):
            return 0
        try:
            sid = int(fields[1])
            time_ms = float(fields[2])
        except ValueError:
            return 0
        site = sites.get(sid)
        if site is None:
            return 0
        primary, parent = self._contexts(entry, exec_res, site, writer, rank=None)
        writer.add_perf_result(
            entry.execution,
            (primary, parent),
            self.tool_name,
            "Aggregate MPI time",
            time_ms,
            "milliseconds",
        )
        return 1

    def _stat_row(
        self,
        line: str,
        entry: IndexEntry,
        exec_res: str,
        sites: dict[int, Callsite],
        writer: PTdfWriter,
    ) -> int:
        fields = line.split()
        if len(fields) != 9 or fields[0] in ("Name",):
            return 0
        try:
            sid = int(fields[1])
        except ValueError:
            return 0
        site = sites.get(sid)
        if site is None:
            return 0
        rank: int | None
        if fields[2] == "*":
            rank = None
        else:
            try:
                rank = int(fields[2])
            except ValueError:
                return 0
        try:
            count_v = float(fields[3])
            max_v = float(fields[4])
            mean_v = float(fields[5])
            min_v = float(fields[6])
        except ValueError:
            return 0
        primary, parent = self._contexts(entry, exec_res, site, writer, rank)
        emitted = 0
        for metric, value, units in (
            (self._stat_metric(site, "count"), count_v, "count"),
            (self._stat_metric(site, "time (max)"), max_v, "milliseconds"),
            (self._stat_metric(site, "time (mean)"), mean_v, "milliseconds"),
            (self._stat_metric(site, "time (min)"), min_v, "milliseconds"),
        ):
            writer.add_perf_result(
                entry.execution, (primary, parent), self.tool_name, metric, value, units
            )
            emitted += 1
        return emitted
