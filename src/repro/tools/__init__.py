"""Converters from performance-tool output to PTdf.

One module per tool/benchmark format the paper's case studies ingest:

* :mod:`repro.tools.irs` — IRS benchmark function-timing tables,
* :mod:`repro.tools.smg2000` — SMG2000 whole-run benchmark output,
* :mod:`repro.tools.mpip` — mpiP profiles (caller/callee contexts use the
  multiple-resource-set extension of Section 4.2),
* :mod:`repro.tools.pmapi` — PMAPI hardware-counter blocks,
* :mod:`repro.tools.paradyn` — Paradyn exports (histograms + index +
  resources, with the Figure-11 hierarchy mapping).

Every converter implements the :class:`repro.ptdf.ptdfgen.Converter`
protocol (``sniff`` + ``convert``) so PTdfGen can drive a directory of
mixed output, which is exactly the paper's workflow.
"""

from .irs import IRSConverter
from .smg2000 import SMGConverter
from .mpip import MpiPConverter
from .pmapi import PMAPIConverter
from .paradyn import ParadynConverter

ALL_CONVERTERS = (
    IRSConverter(),
    SMGConverter(),
    MpiPConverter(),
    PMAPIConverter(),
    ParadynConverter(),
)

__all__ = [
    "IRSConverter",
    "SMGConverter",
    "MpiPConverter",
    "PMAPIConverter",
    "ParadynConverter",
    "ALL_CONVERTERS",
]
