"""The main-window view-model (paper Figure 4).

Holds retrieved results in a table with fixed columns (execution, metric,
tool, value, units) plus user-added *free resource* columns — the paper's
deliberate two-step flow: first retrieve, then choose from the free
resources the retrieval exposed ("by delaying the selection of resource
types until after it retrieves the data, the GUI can help guide the user
toward the most useful information").

Supports sorting by any column, value/text filtering, CSV export/import,
and handing series to :class:`repro.gui.barchart.BarChart`.
"""

from __future__ import annotations

import csv
import io
from typing import Callable, Optional, Sequence

from ..core.query import QueryEngine
from ..core.results import PerformanceResult, ResultRow

FIXED_COLUMNS = ("execution", "metric", "tool", "value", "units")


class MainWindow:
    """Result table + Add Columns dialog, headless."""

    def __init__(self, engine: QueryEngine, specified_ids: Optional[set[int]] = None) -> None:
        self.engine = engine
        self.specified_ids = specified_ids or set()
        self.rows: list[ResultRow] = []
        self.columns: list[str] = list(FIXED_COLUMNS)

    # -- population -------------------------------------------------------------

    def show_results(self, results: Sequence[PerformanceResult]) -> None:
        self.rows = [ResultRow(pr) for pr in results]
        self.columns = list(FIXED_COLUMNS)

    # -- the Add Columns dialog ----------------------------------------------------

    def addable_columns(self) -> dict[str, list[str]]:
        """Free resources by type — the Add Columns dialog's list."""
        return self.engine.free_resources(
            [r.result for r in self.rows], self.specified_ids
        )

    def add_column(self, type_name: str) -> None:
        """Add one free-resource type as a table column and fill its cells."""
        if type_name in self.columns:
            return
        self.columns.append(type_name)
        for row in self.rows:
            names = self.engine.resource_names_of_type_for_result(row.result, type_name)
            row.extra_columns[type_name] = ",".join(names)

    def add_attribute_column(self, type_name: str, attribute: str) -> None:
        """Add a column with an *attribute* of each row's resource of a type."""
        column = f"{type_name}:{attribute}"
        if column in self.columns:
            return
        self.columns.append(column)
        for row in self.rows:
            values = []
            for rid in sorted(row.result.resource_ids):
                res = self.engine.store.resource_by_id(rid)
                if res is not None and res.type_name == type_name:
                    v = self.engine.store.attribute_value(rid, attribute)
                    if v is not None:
                        values.append(v)
            row.extra_columns[column] = ",".join(values)

    # -- table operations ---------------------------------------------------------------

    def sort(self, column: str, descending: bool = False) -> None:
        """Sort rows by any column (numeric when possible)."""
        def key(row: ResultRow):
            v = row.cell(column)
            if v is None:
                return (0, 0.0, "")
            try:
                return (1, float(v), "")
            except (TypeError, ValueError):
                return (2, 0.0, str(v))

        self.rows.sort(key=key, reverse=descending)

    def filter(self, predicate: Callable[[ResultRow], bool]) -> int:
        """Hide rows failing *predicate*; returns how many remain."""
        self.rows = [r for r in self.rows if predicate(r)]
        return len(self.rows)

    def filter_column(self, column: str, substring: str) -> int:
        needle = substring.lower()
        return self.filter(lambda r: needle in str(r.cell(column) or "").lower())

    def cell(self, row: int, column: str):
        return self.rows[row].cell(column)

    def as_table(self) -> list[list[object]]:
        return [[r.cell(c) for c in self.columns] for r in self.rows]

    # -- export / import ("store the data to files, read it back in") -----------------

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([row.cell(c) for c in self.columns])
        return buf.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(self.to_csv())

    @staticmethod
    def load_csv(path: str) -> tuple[list[str], list[list[str]]]:
        """Read back an exported table (column names, rows of strings)."""
        with open(path, "r", encoding="utf-8", newline="") as fh:
            reader = csv.reader(fh)
            rows = list(reader)
        if not rows:
            return [], []
        return rows[0], rows[1:]

    # -- plotting handoff -------------------------------------------------------------------

    def series_for(
        self, label_column: str, value_column: str = "value"
    ) -> list[tuple[str, float]]:
        """(label, value) pairs for the bar chart from visible rows."""
        out: list[tuple[str, float]] = []
        for row in self.rows:
            v = row.cell(value_column)
            if v is None:
                continue
            try:
                out.append((str(row.cell(label_column)), float(v)))
            except (TypeError, ValueError):
                continue
        return out
