"""The selection dialog view-model (paper Figure 3).

Workflow mirrored from Section 3.2:

* The user picks a resource *type* from a menu; the dialog fetches the
  resource names and attribute names of that type **lazily** ("the GUI
  does not get the resource names or attribute types until the user
  selects a resource type").
* Clicking a resource name reveals its children; a child selected under a
  parent means "resources whose full names end with <parent>/<child>",
  while the same base name picked from the top level means "any resource
  with that base name".
* Selected names/attributes/types append to the pr-filter as resource
  families; each carries the Relatives flag (D by default for names).
* After every change the dialog reports how many results each family
  matches alone and how many the whole filter matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.datastore import PTDataStore
from ..core.filters import (
    AttributeClause,
    ByAttributes,
    ByName,
    ByType,
    Expansion,
    PrFilter,
    ResourceFamily,
    ResourceFilter,
)
from ..core.query import QueryEngine


@dataclass
class SelectedParameter:
    """One row of the dialog's "Selected Parameters" list."""

    filter: ResourceFilter
    family: ResourceFamily
    count: int  # results matching this family alone


class SelectionDialog:
    """Builds a pr-filter against a data store with live counts."""

    def __init__(self, store: PTDataStore) -> None:
        self.store = store
        self.engine = QueryEngine(store)
        self.selected: list[SelectedParameter] = []
        self._current_type: Optional[str] = None

    # -- type menu -------------------------------------------------------------

    def resource_type_menu(self) -> list[str]:
        """All type paths, for the popup menu."""
        return [t.name for t in self.store.resource_types()]

    def choose_type(self, type_path: str) -> None:
        """Select a type; resource/attribute lists are fetched on demand."""
        if self.store.resource_type(type_path) is None:
            raise ValueError(f"unknown resource type {type_path!r}")
        self._current_type = type_path

    @property
    def current_type(self) -> Optional[str]:
        return self._current_type

    # -- left-hand lists -----------------------------------------------------------

    def resource_names(self) -> list[str]:
        """Top-level list: distinct base names of the current type."""
        if self._current_type is None:
            return []
        seen: list[str] = []
        for res in self.store.resources_of_type(self._current_type):
            if res.base not in seen:
                seen.append(res.base)
        return seen

    def attribute_names(self) -> list[str]:
        """Attribute names appearing on resources of the current type."""
        if self._current_type is None:
            return []
        rows = self.store.backend.query(
            "SELECT DISTINCT a.name FROM resource_attribute a "
            "JOIN resource_item r ON r.id = a.resource_id "
            "JOIN focus_framework t ON t.id = r.focus_framework_id "
            "WHERE t.name = ? ORDER BY a.name",
            (self._current_type,),
        )
        return [r[0] for r in rows]

    def attribute_values(self, attribute: str) -> list[str]:
        if self._current_type is None:
            return []
        rows = self.store.backend.query(
            "SELECT DISTINCT a.value FROM resource_attribute a "
            "JOIN resource_item r ON r.id = a.resource_id "
            "JOIN focus_framework t ON t.id = r.focus_framework_id "
            "WHERE t.name = ? AND a.name = ? ORDER BY a.value",
            (self._current_type, attribute),
        )
        return [r[0] for r in rows]

    def children_of_name(self, full_name: str) -> list[str]:
        """Expand one resource entry to its children (lazy tree)."""
        res = self.store.resource_by_name(full_name)
        if res is None:
            return []
        return [c.name for c in self.store.children_of(res.id)]

    def view_attributes(self, full_name: str) -> dict[str, str]:
        """The separate attribute-viewer window for one resource."""
        res = self.store.resource_by_name(full_name)
        if res is None:
            raise ValueError(f"unknown resource {full_name!r}")
        return {a.name: a.value for a in self.store.attributes_of(res.id)}

    # -- building the pr-filter --------------------------------------------------------

    def add_name(
        self, name: str, expansion: Expansion = Expansion.DESCENDANTS
    ) -> SelectedParameter:
        """Add a resource-name family (full path or top-level base name)."""
        return self._append(ByName(name, expansion))

    def add_type(
        self, type_path: Optional[str] = None, expansion: Expansion = Expansion.NONE
    ) -> SelectedParameter:
        """Add a whole-type family ("only machine-level measurements")."""
        tp = type_path or self._current_type
        if tp is None:
            raise ValueError("no resource type selected")
        return self._append(ByType(tp, expansion))

    def add_attribute(
        self,
        attribute: str,
        comparator: str,
        value: str,
        expansion: Expansion = Expansion.NONE,
    ) -> SelectedParameter:
        """Add an attribute-clause family scoped to the current type."""
        clause = AttributeClause(attribute, comparator, value)
        return self._append(
            ByAttributes((clause,), type_path=self._current_type, expansion=expansion)
        )

    def _append(self, f: ResourceFilter) -> SelectedParameter:
        family = self.store.resolve_filter(f)
        param = SelectedParameter(
            filter=f, family=family, count=self.engine.count_for_family(family)
        )
        self.selected.append(param)
        return param

    def set_relatives(self, index: int, expansion: Expansion) -> SelectedParameter:
        """Change a row's A/D/B/N flag and re-resolve it."""
        old = self.selected[index].filter
        if isinstance(old, ByName):
            new: ResourceFilter = ByName(old.name, expansion)
        elif isinstance(old, ByType):
            new = ByType(old.type_path, expansion)
        else:
            new = ByAttributes(old.clauses, old.type_path, expansion)
        family = self.store.resolve_filter(new)
        param = SelectedParameter(
            filter=new, family=family, count=self.engine.count_for_family(family)
        )
        self.selected[index] = param
        return param

    def remove(self, index: int) -> None:
        del self.selected[index]

    # -- counts & retrieval -------------------------------------------------------------

    @property
    def families(self) -> list[ResourceFamily]:
        return [p.family for p in self.selected]

    def total_count(self) -> int:
        """The whole-filter match count shown in the dialog's count box."""
        return self.engine.count_for_filter(self.families)

    def pr_filter(self) -> PrFilter:
        return PrFilter([p.filter for p in self.selected])

    def retrieve(self):
        """The "get data" button: materialise matching results."""
        return self.engine.fetch_results(self.engine.result_ids(self.families))
