"""SVG rendering for charts (paper Section 6: "a richer visualization
interface").

Deterministic, dependency-free SVG output for :class:`BarChart` (grouped
vertical bars with axis, labels and legend) and a simple line chart for
vector performance results (Paradyn histograms over time).  The paper's
GUI hand-rolled its bar chart widget; this is the modern equivalent with
a testable text artifact.
"""

from __future__ import annotations

from typing import Sequence

from .barchart import BarChart

_PALETTE = ("#4878a8", "#e49444", "#5aa469", "#d1605e", "#857aab", "#937860")


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def barchart_to_svg(
    chart: BarChart,
    width: int = 640,
    height: int = 360,
) -> str:
    """Render a grouped bar chart as a standalone SVG document."""
    margin_l, margin_r, margin_t, margin_b = 56, 16, 36, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    categories = chart.categories
    n_cat = max(1, len(categories))
    n_ser = max(1, len(chart.series))
    peak = chart.max_value() or 1.0

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if chart.title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14">{_esc(chart.title)}</text>'
        )
    # Axes.
    x0, y0 = margin_l, margin_t + plot_h
    parts.append(
        f'<line x1="{x0}" y1="{margin_t}" x2="{x0}" y2="{y0}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" stroke="black"/>'
    )
    # Y ticks (4 divisions).
    for i in range(5):
        v = peak * i / 4
        y = y0 - plot_h * i / 4
        parts.append(
            f'<line x1="{x0 - 4}" y1="{y:.1f}" x2="{x0}" y2="{y:.1f}" stroke="black"/>'
        )
        parts.append(
            f'<text x="{x0 - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{v:.3g}</text>'
        )
    # Bars.
    group_w = plot_w / n_cat
    bar_w = max(2.0, group_w * 0.8 / n_ser)
    for ci, cat in enumerate(categories):
        gx = x0 + group_w * ci + group_w * 0.1
        for si, series in enumerate(chart.series):
            v = series.value_for(cat)
            if v is None:
                continue
            h = plot_h * v / peak
            x = gx + si * bar_w
            y = y0 - h
            color = _PALETTE[si % len(_PALETTE)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}">'
                f"<title>{_esc(series.name)} {_esc(cat)}: {v:.6g}</title></rect>"
            )
        parts.append(
            f'<text x="{gx + group_w * 0.4:.1f}" y="{y0 + 14}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{_esc(cat)}</text>"
        )
    # Legend.
    lx = x0
    ly = height - 14
    for si, series in enumerate(chart.series):
        color = _PALETTE[si % len(_PALETTE)]
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{lx + 14}" y="{ly}" font-family="sans-serif" '
            f'font-size="11">{_esc(series.name)}</text>'
        )
        lx += 14 + 8 * max(4, len(series.name))
    if chart.value_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2:.1f}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="11" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2:.1f})">'
            f"{_esc(chart.value_label)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def series_to_svg(
    points: Sequence[tuple[float, float]],
    title: str = "",
    value_label: str = "",
    width: int = 640,
    height: int = 240,
) -> str:
    """Render (x, y) points as an SVG polyline (histograms over time)."""
    margin_l, margin_r, margin_t, margin_b = 56, 16, 30, 30
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="18" text-anchor="middle" '
            f'font-family="sans-serif" font-size="13">{_esc(title)}</text>'
        )
    x0, y0 = margin_l, margin_t + plot_h
    parts.append(f'<line x1="{x0}" y1="{margin_t}" x2="{x0}" y2="{y0}" stroke="black"/>')
    parts.append(f'<line x1="{x0}" y1="{y0}" x2="{x0 + plot_w}" y2="{y0}" stroke="black"/>')
    if points:
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_min, x_max = min(xs), max(xs)
        y_max = max(ys) or 1.0
        span = (x_max - x_min) or 1.0
        coords = " ".join(
            f"{x0 + plot_w * (x - x_min) / span:.1f},"
            f"{y0 - plot_h * y / y_max:.1f}"
            for x, y in points
        )
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{_PALETTE[0]}" '
            f'stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{x0 - 8}" y="{margin_t + 4}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{y_max:.3g}</text>'
        )
    if value_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2:.1f}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="11" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2:.1f})">'
            f"{_esc(value_label)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg_text: str, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg_text)
