"""Analysis-session persistence.

The paper's GUI lets users "store the data to files, read it back in, and
initiate new queries"; this module rounds that out by making the *query
state* itself durable: a :class:`Session` records the pr-filter under
construction, chosen columns and sort order, and serialises to JSON so an
analysis can be resumed (or shared with the colleague next door — the
collaboration story of the paper's introduction).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.datastore import PTDataStore
from ..core.filters import (
    AttributeClause,
    ByAttributes,
    ByConstraint,
    ByName,
    ByType,
    Expansion,
    PrFilter,
    ResourceFilter,
)
from ..core.query import QueryEngine
from .mainwindow import MainWindow

_FORMAT_VERSION = 1


def filter_to_dict(f: ResourceFilter) -> dict:
    """JSON-able representation of one resource filter."""
    if isinstance(f, ByName):
        return {"kind": "name", "name": f.name, "expansion": f.expansion.value}
    if isinstance(f, ByType):
        return {"kind": "type", "type": f.type_path, "expansion": f.expansion.value}
    if isinstance(f, ByAttributes):
        return {
            "kind": "attributes",
            "clauses": [
                {"name": c.name, "comparator": c.comparator, "value": c.value}
                for c in f.clauses
            ],
            "type": f.type_path,
            "expansion": f.expansion.value,
        }
    if isinstance(f, ByConstraint):
        return {
            "kind": "constraint",
            "target": f.target,
            "direction": f.direction,
            "expansion": f.expansion.value,
        }
    raise TypeError(f"cannot serialise filter {type(f).__name__}")


def filter_from_dict(d: dict) -> ResourceFilter:
    kind = d.get("kind")
    expansion = Expansion(d.get("expansion", "N"))
    if kind == "name":
        return ByName(d["name"], expansion)
    if kind == "type":
        return ByType(d["type"], expansion)
    if kind == "attributes":
        clauses = tuple(
            AttributeClause(c["name"], c["comparator"], c["value"])
            for c in d["clauses"]
        )
        return ByAttributes(clauses, d.get("type"), expansion)
    if kind == "constraint":
        return ByConstraint(d["target"], d.get("direction", "to"), expansion)
    raise ValueError(f"unknown filter kind {kind!r}")


@dataclass
class Session:
    """One analysis session: the query and presentation state."""

    name: str = "session"
    pr_filter: PrFilter = field(default_factory=PrFilter)
    columns: list[str] = field(default_factory=list)  # added free-resource columns
    sort_column: Optional[str] = None
    sort_descending: bool = False
    notes: str = ""

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "name": self.name,
            "filters": [filter_to_dict(f) for f in self.pr_filter.filters],
            "columns": self.columns,
            "sort_column": self.sort_column,
            "sort_descending": self.sort_descending,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Session":
        if d.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported session version {d.get('version')!r}")
        return cls(
            name=d.get("name", "session"),
            pr_filter=PrFilter([filter_from_dict(fd) for fd in d.get("filters", [])]),
            columns=list(d.get("columns", [])),
            sort_column=d.get("sort_column"),
            sort_descending=bool(d.get("sort_descending", False)),
            notes=d.get("notes", ""),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    @classmethod
    def load(cls, path: str) -> "Session":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # -- execution --------------------------------------------------------------

    def run(self, store: PTDataStore) -> MainWindow:
        """Re-run the saved query against a store and rebuild the table."""
        engine = QueryEngine(store)
        families = store.resolve_prfilter(self.pr_filter)
        specified = set()
        for fam in families:
            specified |= fam.resource_ids
        window = MainWindow(engine, specified_ids=specified)
        window.show_results(engine.fetch_results(engine.result_ids(families)))
        for column in self.columns:
            window.add_column(column)
        if self.sort_column:
            window.sort(self.sort_column, self.sort_descending)
        return window
