"""Bar-chart view-model and ASCII renderer (paper Figure 5).

"Users can plot selected data from the main window in a bar chart.
Multiple series of values can appear on the same chart" — Figure 5 shows
min and max running time of a function across all processors for
different process counts, a rough load-balance indicator.  The paper's
widget was hand-written for another tool; ours renders to text and CSV so
tests and benchmarks can assert on it.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class Series:
    """One named series of (category, value) bars."""

    name: str
    points: list[tuple[str, float]] = field(default_factory=list)

    def add(self, category: str, value: float) -> None:
        self.points.append((category, float(value)))

    def value_for(self, category: str) -> Optional[float]:
        for c, v in self.points:
            if c == category:
                return v
        return None


class BarChart:
    """Multi-series bar chart with deterministic text rendering."""

    def __init__(self, title: str = "", value_label: str = "") -> None:
        self.title = title
        self.value_label = value_label
        self.series: list[Series] = []

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    @property
    def categories(self) -> list[str]:
        seen: list[str] = []
        for s in self.series:
            for c, _v in s.points:
                if c not in seen:
                    seen.append(c)
        return seen

    def max_value(self) -> float:
        values = [v for s in self.series for _c, v in s.points]
        return max(values) if values else 0.0

    # -- renderers ----------------------------------------------------------------

    def render_ascii(self, width: int = 50) -> str:
        """Horizontal bars, one block per category, one row per series."""
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
            out.write("=" * len(self.title) + "\n")
        peak = self.max_value()
        label_w = max((len(s.name) for s in self.series), default=0)
        cat_w = max((len(c) for c in self.categories), default=0)
        for cat in self.categories:
            out.write(f"{cat:<{cat_w}}\n")
            for s in self.series:
                v = s.value_for(cat)
                if v is None:
                    continue
                bar = "#" * (int(round(width * v / peak)) if peak > 0 else 0)
                out.write(f"  {s.name:<{label_w}} |{bar} {v:.4g}\n")
        if self.value_label:
            out.write(f"({self.value_label})\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Spreadsheet-importable form (the paper's OpenOffice path)."""
        out = io.StringIO()
        names = [s.name for s in self.series]
        out.write(",".join(["category"] + names) + "\n")
        for cat in self.categories:
            cells = [cat]
            for s in self.series:
                v = s.value_for(cat)
                cells.append("" if v is None else repr(v))
            out.write(",".join(cells) + "\n")
        return out.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())


def min_max_chart(
    title: str,
    categories: Sequence[str],
    minima: Sequence[float],
    maxima: Sequence[float],
    value_label: str = "seconds",
) -> BarChart:
    """Convenience constructor for the Figure-5 min/max load-balance chart."""
    chart = BarChart(title, value_label)
    mn = Series("min")
    mx = Series("max")
    for cat, lo, hi in zip(categories, minima, maxima):
        mn.add(cat, lo)
        mx.add(cat, hi)
    chart.add_series(mn)
    chart.add_series(mx)
    return chart
