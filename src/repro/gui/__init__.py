"""Headless view-models of the PerfTrack GUI (paper Section 3.2).

The paper's GUI is Qt; every behaviour it describes is a query/data
behaviour, so this package exposes them as programmatic view-models:

* :class:`~repro.gui.selection.SelectionDialog` — the Figure-3 dialog:
  resource-type menu, lazily expanded resource lists, attribute viewing,
  pr-filter construction with live per-family and whole-filter counts,
  and the A/D/B/N "Relatives" flag.
* :class:`~repro.gui.mainwindow.MainWindow` — the Figure-4 table:
  retrieve results, two-step Add Columns over free resources, sorting,
  filtering, CSV export and reload.
* :class:`~repro.gui.barchart.BarChart` — the Figure-5 chart: multi-series
  bar data with an ASCII renderer and CSV export.
"""

from .selection import SelectionDialog, SelectedParameter
from .mainwindow import MainWindow
from .barchart import BarChart, Series
from .session import Session
from .svg import barchart_to_svg, save_svg, series_to_svg

__all__ = [
    "SelectionDialog",
    "SelectedParameter",
    "MainWindow",
    "BarChart",
    "Series",
    "Session",
    "barchart_to_svg",
    "series_to_svg",
    "save_svg",
]
