"""Synthetic workloads and tool-output generators.

The paper's case studies used real runs of the ASC Purple benchmarks (IRS,
SMG2000) on LLNL machines, measured with the benchmarks' own output plus
mpiP, PMAPI and Paradyn.  We have none of those; this package generates
*files in the same formats* at the same scales, driven by a deterministic
statistical workload model, so the converters in :mod:`repro.tools` and
everything above them exercise the identical code paths (see DESIGN.md
Section 2 for the substitution argument).
"""

from .workload import WorkloadModel, exec_rng
from .machines import MCR, FROST, UV, BGL, all_machines

__all__ = ["WorkloadModel", "exec_rng", "MCR", "FROST", "UV", "BGL", "all_machines"]
