"""Synthetic IRS (Implicit Radiation Solver) benchmark output.

The paper's first case study (Section 4.1): "Each standard IRS benchmark
outputs several data files for each application run.  IRS outputs
performance data for the whole program, with the values cumulative over
all processes.  The data includes timings for approximately 80 different
functions in the program.  For each function, the aggregate, average, max
and min values for five different metrics are reported.  Sometimes one of
the values or metrics doesn't apply, so there are slightly varying numbers
of performance results ... In our runs, each IRS execution generated
approximately 1000 performance results" (Table 1: 6 files, ~1,514 results,
25 metrics per execution).

We emit six files per run: one run summary plus five per-metric function
timing tables in a fixed-width layout; inapplicable cells are printed as
``-`` with a deterministic ~5% rate so per-execution result counts vary
like the paper's.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..collect.machine import MachineDescription
from .workload import IRS_FUNCTIONS, WorkloadModel, exec_rng

#: The five IRS metrics (per-function tables) and their units.
IRS_METRICS: tuple[tuple[str, str], ...] = (
    ("CPU time", "seconds"),
    ("Wall time", "seconds"),
    ("MPI time", "seconds"),
    ("FP operations", "Mflops"),
    ("L1 cache misses", "millions"),
)

IRS_STATS: tuple[str, ...] = ("aggregate", "avg", "max", "min")

_BANNER = "IRS function timing report"
_SUMMARY_BANNER = "IRS Implicit Radiation Solver"


@dataclass(frozen=True)
class IRSRunSpec:
    """Parameters of one synthetic IRS run."""

    execution: str
    machine: MachineDescription
    processes: int
    threads: int = 1
    problem: str = "zrad3d"


def _metric_scale(rng: np.random.Generator, metric: str, cpu_total: float) -> float:
    """Total volume of one metric given total CPU seconds."""
    if metric == "CPU time":
        return cpu_total
    if metric == "Wall time":
        return cpu_total * float(rng.uniform(1.02, 1.15))
    if metric == "MPI time":
        return cpu_total * float(rng.uniform(0.08, 0.35))
    if metric == "FP operations":
        return cpu_total * float(rng.uniform(180.0, 420.0))  # Mflop/s per cpu-s
    return cpu_total * float(rng.uniform(0.8, 4.0))  # cache misses


def generate_irs_run(
    spec: IRSRunSpec,
    out_dir: str,
    model: Optional[WorkloadModel] = None,
    drop_rate: float = 0.05,
) -> list[str]:
    """Write the six IRS output files for one run; returns the paths."""
    model = model or WorkloadModel()
    rng = exec_rng("irs", spec.execution)
    os.makedirs(out_dir, exist_ok=True)
    p = spec.processes
    wall = model.total_time(p)
    cpu_total = wall * p * float(rng.uniform(0.85, 0.98))
    shares = model.function_shares(rng, len(IRS_FUNCTIONS))
    paths: list[str] = []

    # 1. run summary file
    summary_path = os.path.join(out_dir, f"{spec.execution}.out")
    iterations = int(rng.integers(40, 120))
    with open(summary_path, "w", encoding="utf-8") as fh:
        fh.write("*" * 60 + "\n")
        fh.write(f"{_SUMMARY_BANNER}\n")
        fh.write(f"Problem: {spec.problem}\n")
        fh.write("*" * 60 + "\n")
        fh.write(f"machine            = {spec.machine.name}\n")
        fh.write(f"machine resource   = /{spec.machine.grid}/{spec.machine.name}\n")
        fh.write(f"processes          = {p}\n")
        fh.write(f"threads per proc   = {spec.threads}\n")
        fh.write(f"wall clock time    = {wall:.6f} seconds\n")
        fh.write(f"total CPU time     = {cpu_total:.6f} seconds\n")
        fh.write(f"timestep iterations = {iterations}\n")
        fh.write(f"final energy error = {float(rng.uniform(1e-9, 1e-6)):.3e}\n")
        fh.write(f"memory high water  = {float(rng.uniform(200, 900)):.1f} MB\n")
    paths.append(summary_path)

    # 2-6. per-metric function tables
    for metric, units in IRS_METRICS:
        total = _metric_scale(rng, metric, cpu_total)
        path = os.path.join(
            out_dir, f"{spec.execution}.timing.{metric.replace(' ', '_').lower()}"
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"{_BANNER}\n")
            fh.write(f"metric: {metric} ({units})\n")
            fh.write(f"machine: /{spec.machine.grid}/{spec.machine.name}\n")
            fh.write(f"processes: {p}\n")
            fh.write(
                f"{'function':<28}{'aggregate':>16}{'avg':>14}{'max':>14}{'min':>14}\n"
            )
            fh.write("-" * 86 + "\n")
            for func, share in zip(IRS_FUNCTIONS, shares):
                agg = total * float(share)
                per_proc = model.per_process_values(rng, agg / p, p)
                cells = {
                    "aggregate": agg,
                    "avg": float(per_proc.mean()),
                    "max": float(per_proc.max()),
                    "min": float(per_proc.min()),
                }
                rendered = []
                for stat in IRS_STATS:
                    if float(rng.random()) < drop_rate:
                        rendered.append("-")
                    else:
                        rendered.append(f"{cells[stat]:.6f}")
                fh.write(
                    f"{func:<28}{rendered[0]:>16}{rendered[1]:>14}"
                    f"{rendered[2]:>14}{rendered[3]:>14}\n"
                )
        paths.append(path)
    return paths


def irs_sweep_specs(
    machine: MachineDescription,
    process_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    runs_per_count: int = 1,
    problem: str = "zrad3d",
) -> list[IRSRunSpec]:
    """Specs for a process-count sweep on one machine (the Fig. 5 study)."""
    specs = []
    for p in process_counts:
        for r in range(runs_per_count):
            name = f"irs-{machine.name.lower()}-p{p:04d}-r{r}"
            specs.append(IRSRunSpec(name, machine, p, problem=problem))
    return specs
