"""Synthetic PMAPI hardware-counter output (paper Figure 7, lower block).

PMAPI is AIX's hardware performance monitor API; the noise-analysis study
instrumented SMG2000 with it.  The block is a per-rank table of counter
totals.  Counter magnitudes follow the workload model: cycles track CPU
time at the clock rate, instructions at a plausible IPC, misses as rates
per instruction.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from .workload import WorkloadModel, exec_rng

PMAPI_COUNTERS: tuple[str, ...] = (
    "PM_CYC",
    "PM_INST_CMPL",
    "PM_FPU0_CMPL",
    "PM_FPU1_CMPL",
    "PM_LD_MISS_L1",
    "PM_TLB_MISS",
)

_HEADER = "PMAPI hardware counter report"


def render_pmapi_block(
    execution: str,
    processes: int,
    model: Optional[WorkloadModel] = None,
    rng: Optional[np.random.Generator] = None,
    clock_mhz: int = 1500,
) -> str:
    """Render the PMAPI block for one run as text."""
    model = model or WorkloadModel()
    rng = rng if rng is not None else exec_rng("pmapi", execution)
    cpu_per_rank = model.total_time(processes)
    cyc = model.per_process_values(rng, cpu_per_rank * clock_mhz * 1e6, processes)
    ipc = rng.uniform(0.6, 1.4, size=processes)
    inst = cyc * ipc
    fpu_share = rng.uniform(0.08, 0.3, size=processes)
    lines = [
        _HEADER,
        f"counters: {' '.join(PMAPI_COUNTERS)}",
        f"ranks: {processes}",
        "rank " + " ".join(f"{c:>16}" for c in PMAPI_COUNTERS),
    ]
    for r in range(processes):
        fpu = inst[r] * fpu_share[r]
        values = (
            int(cyc[r]),
            int(inst[r]),
            int(fpu * 0.55),
            int(fpu * 0.45),
            int(inst[r] * float(rng.uniform(0.002, 0.02))),
            int(inst[r] * float(rng.uniform(1e-5, 2e-4))),
        )
        lines.append(f"{r:<5}" + " ".join(f"{v:>16d}" for v in values))
    return "\n".join(lines) + "\n"


def generate_pmapi_file(
    execution: str,
    processes: int,
    out_dir: str,
    model: Optional[WorkloadModel] = None,
    clock_mhz: int = 1500,
) -> str:
    """Write a standalone PMAPI report file; returns its path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{execution}.pmapi.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_pmapi_block(execution, processes, model, clock_mhz=clock_mhz))
    return path
