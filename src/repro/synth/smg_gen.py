"""Synthetic SMG2000 benchmark output (paper Figure 7, Section 4.2).

"The raw SMG2000 benchmark data only contains eight data values on the
level of the whole execution": wall/cpu times for the three phases
(Struct Interface, SMG Setup, SMG Solve), the iteration count and the
final residual norm.  The run output optionally carries a PMAPI hardware
counter block appended by extra instrumentation, exactly as the Figure 7
screenshot shows one file holding both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..collect.machine import MachineDescription
from .pmapi_gen import render_pmapi_block
from .workload import WorkloadModel, exec_rng

SMG_PHASES: tuple[str, ...] = ("Struct Interface", "SMG Setup", "SMG Solve")


@dataclass(frozen=True)
class SMGRunSpec:
    """Parameters of one synthetic SMG2000 run."""

    execution: str
    machine: MachineDescription
    processes: int
    nx: int = 40
    ny: int = 40
    nz: int = 40
    with_pmapi: bool = False


def _grid_decomposition(p: int) -> tuple[int, int, int]:
    """Factor p into a roughly cubic (Px, Py, Pz)."""
    px = int(round(p ** (1.0 / 3.0)))
    while px > 1 and p % px:
        px -= 1
    rest = p // px
    py = int(round(rest ** 0.5))
    while py > 1 and rest % py:
        py -= 1
    pz = rest // py
    return px, py, pz


def generate_smg_run(
    spec: SMGRunSpec,
    out_dir: str,
    model: Optional[WorkloadModel] = None,
) -> str:
    """Write one SMG2000 output file; returns its path."""
    model = model or WorkloadModel(parallel_seconds=280.0, serial_seconds=0.8)
    rng = exec_rng("smg2000", spec.execution)
    os.makedirs(out_dir, exist_ok=True)
    p = spec.processes
    px, py, pz = _grid_decomposition(p)
    solve_wall = model.total_time(p)
    setup_wall = solve_wall * float(rng.uniform(0.08, 0.18))
    struct_wall = solve_wall * float(rng.uniform(0.005, 0.02))
    path = os.path.join(out_dir, f"{spec.execution}.smg.out")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("Running with these driver parameters:\n")
        fh.write(f"  (nx, ny, nz)    = ({spec.nx}, {spec.ny}, {spec.nz})\n")
        fh.write(f"  (Px, Py, Pz)    = ({px}, {py}, {pz})\n")
        fh.write("  (bx, by, bz)    = (1, 1, 1)\n")
        fh.write("  (cx, cy, cz)    = (1.000000, 1.000000, 1.000000)\n")
        fh.write("  (n_pre, n_post) = (1, 1)\n")
        fh.write("  dim             = 3\n")
        fh.write("  solver ID       = 0\n")
        for phase, wall in zip(SMG_PHASES, (struct_wall, setup_wall, solve_wall)):
            cpu = wall * float(rng.uniform(0.92, 0.999))
            fh.write("=" * 45 + "\n")
            fh.write(f"{phase}:\n")
            fh.write(f"  wall clock time = {wall:.6f} seconds\n")
            fh.write(f"  cpu clock time  = {cpu:.6f} seconds\n")
        fh.write("=" * 45 + "\n")
        fh.write(f"Iterations = {int(rng.integers(4, 12))}\n")
        fh.write(
            f"Final Relative Residual Norm = {float(rng.uniform(1e-9, 1e-6)):.6e}\n"
        )
        if spec.with_pmapi:
            fh.write("\n")
            fh.write(render_pmapi_block(spec.execution, p, model, rng))
    return path
