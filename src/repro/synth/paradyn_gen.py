"""Synthetic Paradyn export files (paper Section 4.3).

A Paradyn session export consists of several text files: histogram files
(one per metric-focus pair, a header plus one value per bin, ``nan`` for
bins with no data), an index file describing the histogram files, a
resources file listing every Paradyn resource, and a search history graph.

Scales follow the paper: each of the three IRS executions had
"approximately 17,000 resources, 8 metrics, and 25,000 performance
results", with per-execution variation because dynamic instrumentation
starts at different times ("Paradyn may not have data for some bins") —
reproduced here via a deterministic per-execution nan prefix and nan rate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .workload import WorkloadModel, exec_rng

PARADYN_METRICS: tuple[str, ...] = (
    "cpu_inclusive",
    "cpu_exclusive",
    "exec_time",
    "sync_wait_inclusive",
    "msg_bytes_sent",
    "msg_bytes_recv",
    "procedure_calls",
    "io_wait_inclusive",
)


@dataclass
class ParadynSpec:
    """Parameters of one synthetic Paradyn session export."""

    execution: str
    processes: int = 4
    threads_per_process: int = 1
    modules: int = 40
    functions_per_module: int = 12
    sync_objects: int = 16
    histograms: int = 25
    bins: int = 1000
    bin_width: float = 0.2
    nan_rate: float = 0.04
    local_phases: int = 0
    metrics: tuple[str, ...] = PARADYN_METRICS
    #: Fraction of modules that are dynamic libraries (map to environment).
    dynamic_module_fraction: float = 0.15
    #: Fraction of functions living in DEFAULT_MODULE (unmappable).
    default_module_fraction: float = 0.02


@dataclass
class ParadynExport:
    """Paths of one generated export."""

    resources_path: str
    index_path: str
    histogram_paths: list[str] = field(default_factory=list)
    shg_path: Optional[str] = None


def _code_resources(spec: ParadynSpec, rng: np.random.Generator) -> list[str]:
    out = ["/Code"]
    n_dynamic = int(spec.modules * spec.dynamic_module_fraction)
    for m in range(spec.modules):
        if m < n_dynamic:
            mod = f"libshared_{m:03d}.so"
        else:
            mod = f"module_{m:03d}.c"
        out.append(f"/Code/{mod}")
        for f in range(spec.functions_per_module):
            out.append(f"/Code/{mod}/fn_{m:03d}_{f:03d}")
    n_default = max(1, int(spec.modules * spec.functions_per_module
                           * spec.default_module_fraction))
    out.append("/Code/DEFAULT_MODULE")
    for f in range(n_default):
        out.append(f"/Code/DEFAULT_MODULE/builtin_{f:03d}")
    return out


def _machine_resources(spec: ParadynSpec, rng: np.random.Generator) -> list[str]:
    out = ["/Machine"]
    for p in range(spec.processes):
        node = f"mcr{int(rng.integers(1, 128)):03d}"
        node_res = f"/Machine/{node}"
        if node_res not in out:
            out.append(node_res)
        pid = int(rng.integers(1000, 30000))
        proc = f"{node_res}/irs{{{pid}}}"
        out.append(proc)
        for t in range(1, spec.threads_per_process + 1):
            out.append(f"{proc}/thr_{t}")
    return out


def _sync_resources(spec: ParadynSpec) -> list[str]:
    out = ["/SyncObject", "/SyncObject/Message", "/SyncObject/Window"]
    for i in range(spec.sync_objects):
        kind = "Message" if i % 2 == 0 else "Window"
        out.append(f"/SyncObject/{kind}/obj_{i:03d}")
    return out


def generate_paradyn_export(
    spec: ParadynSpec,
    out_dir: str,
    model: Optional[WorkloadModel] = None,
) -> ParadynExport:
    """Write the full set of Paradyn export files for one execution."""
    model = model or WorkloadModel()
    rng = exec_rng("paradyn", spec.execution)
    os.makedirs(out_dir, exist_ok=True)

    code = _code_resources(spec, rng)
    machine = _machine_resources(spec, rng)
    sync = _sync_resources(spec)
    resources = code + machine + sync

    resources_path = os.path.join(out_dir, f"{spec.execution}.resources")
    with open(resources_path, "w", encoding="utf-8") as fh:
        fh.write("# Paradyn resources export\n")
        for r in resources:
            fh.write(r + "\n")

    functions = [r for r in code if r.count("/") == 3]
    processes = [r for r in machine if r.count("/") == 3]

    export = ParadynExport(resources_path=resources_path, index_path="")
    index_lines = ["# Paradyn histogram index"]
    for h in range(spec.histograms):
        metric = spec.metrics[h % len(spec.metrics)]
        # Some histograms belong to user-created local phases.
        phase = None
        if spec.local_phases > 0 and h % 3 == 2:
            phase = f"phase_{h % spec.local_phases}"
        focus_parts = [functions[int(rng.integers(len(functions)))]]
        if rng.random() < 0.7:
            focus_parts.append(processes[int(rng.integers(len(processes)))])
        if rng.random() < 0.15:
            focus_parts.append(sync[3 + int(rng.integers(spec.sync_objects))])
        focus = ",".join(focus_parts)
        hist_name = f"{spec.execution}_hist_{h:04d}.hist"
        hist_path = os.path.join(out_dir, hist_name)
        # Dynamic instrumentation starts late: a nan prefix of random length.
        start_bin = int(rng.integers(0, max(1, spec.bins // 10)))
        scale = {
            "cpu_inclusive": spec.bin_width * 0.8,
            "cpu_exclusive": spec.bin_width * 0.5,
            "exec_time": spec.bin_width,
            "sync_wait_inclusive": spec.bin_width * 0.3,
            "msg_bytes_sent": 1.0e5,
            "msg_bytes_recv": 1.0e5,
            "procedure_calls": 5.0e3,
            "io_wait_inclusive": spec.bin_width * 0.05,
        }.get(metric, 1.0)
        values = rng.lognormal(mean=0.0, sigma=0.6, size=spec.bins) * scale
        nan_mask = rng.random(spec.bins) < spec.nan_rate
        nan_mask[:start_bin] = True
        with open(hist_path, "w", encoding="utf-8") as fh:
            fh.write("# Paradyn histogram export\n")
            fh.write(f"# metric: {metric}\n")
            if phase is not None:
                fh.write(f"# phase: {phase}\n")
            fh.write(f"# focus: {focus}\n")
            fh.write(f"# numBins: {spec.bins}\n")
            fh.write(f"# binWidth: {spec.bin_width}\n")
            fh.write("# startTime: 0.0\n")
            for i in range(spec.bins):
                if nan_mask[i]:
                    fh.write("nan\n")
                else:
                    fh.write(f"{values[i]:.6g}\n")
        export.histogram_paths.append(hist_path)
        index_lines.append(f"{hist_name} {metric} {focus}")
        del phase

    index_path = os.path.join(out_dir, f"{spec.execution}.index")
    with open(index_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(index_lines) + "\n")
    export.index_path = index_path

    # Search history graph: recorded for completeness; the converter does
    # not ingest it (the paper defers Performance Consultant data to
    # future work on complex performance results).
    shg_path = os.path.join(out_dir, f"{spec.execution}.shg")
    with open(shg_path, "w", encoding="utf-8") as fh:
        fh.write("# Paradyn search history graph\n")
        fh.write("TopLevelHypothesis true\n")
        for i in range(8):
            fn = functions[int(rng.integers(len(functions)))]
            verdict = "true" if rng.random() < 0.3 else "false"
            fh.write(f"ExcessiveSyncWaitingTime {fn} {verdict}\n")
    export.shg_path = shg_path
    return export
