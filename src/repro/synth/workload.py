"""Statistical workload model behind all synthetic tool output.

Design goals:

* **Deterministic** — every generator seeds NumPy's PCG64 from a stable
  hash of the execution name, so regenerating a study reproduces the same
  bytes (tests and benchmarks rely on this).
* **Realistic shape** — per-function times follow a lognormal size
  distribution (a few hot functions dominate, like real profiles); per-
  process values carry a load-imbalance term that grows with process
  count plus multiplicative OS-noise, the effect the paper's second case
  study (the BG/L "noise analysis") measured.
* **Scaling law** — execution time follows an Amdahl-plus-communication
  model ``t(p) = serial + parallel/p + comm·log2(p)``, so parameter
  studies show speedup that rolls off at scale, giving the Figure-5 style
  curves their characteristic shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np


def stable_seed(*parts: str) -> int:
    """A 64-bit seed derived from strings, stable across runs and platforms."""
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def exec_rng(*parts: str) -> np.random.Generator:
    """A deterministic RNG for one execution (or any named entity)."""
    return np.random.default_rng(stable_seed(*parts))


@dataclass
class WorkloadModel:
    """Parameters of the synthetic application behaviour."""

    #: Serial fraction of the total work (Amdahl).
    serial_seconds: float = 2.0
    #: Perfectly parallel work at one process.
    parallel_seconds: float = 600.0
    #: Per-doubling communication overhead in seconds.
    comm_seconds: float = 0.8
    #: Load imbalance coefficient; spread grows ~ sqrt(log2 p) * imbalance.
    imbalance: float = 0.08
    #: Multiplicative OS-noise sigma (lognormal).
    noise_sigma: float = 0.02
    #: Lognormal sigma of the per-function share distribution.
    function_sigma: float = 1.6

    def total_time(self, processes: int) -> float:
        """Modelled wall time of the whole run at *processes* ranks."""
        p = max(1, processes)
        return (
            self.serial_seconds
            + self.parallel_seconds / p
            + self.comm_seconds * float(np.log2(p))
        )

    def function_shares(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Fractions of total time per function (sorted descending, sum=1)."""
        raw = rng.lognormal(mean=0.0, sigma=self.function_sigma, size=count)
        raw[::-1].sort()
        return raw / raw.sum()

    def per_process_values(
        self,
        rng: np.random.Generator,
        mean_value: float,
        processes: int,
    ) -> np.ndarray:
        """Per-rank values around *mean_value* with imbalance + noise.

        The imbalance term is a fixed per-rank skew (some ranks simply own
        more work); noise is fresh lognormal jitter.  The spread widens
        with process count, which is what makes the Figure-5 min/max bars
        separate at scale.
        """
        p = max(1, processes)
        skew_scale = self.imbalance * float(np.sqrt(np.log2(p) + 1.0))
        skew = rng.normal(loc=0.0, scale=skew_scale, size=p)
        noise = rng.lognormal(mean=0.0, sigma=self.noise_sigma, size=p)
        values = mean_value * (1.0 + np.abs(skew)) * noise
        return np.maximum(values, mean_value * 0.05)

    def mpi_fraction(self, processes: int) -> float:
        """Fraction of time in MPI, growing with scale and bounded."""
        p = max(1, processes)
        frac = 0.04 * float(np.log2(p) + 1.0)
        return min(frac, 0.6)


#: Function names reused by the IRS/SMG/Paradyn generators so that code
#: resources overlap across tools (the cross-tool comparison the paper's
#: design targets).
IRS_FUNCTIONS: tuple[str, ...] = tuple(
    [
        "main",
        "rtmain",
        "xirs",
        "AllocateGlobalArrays",
        "SetupProblem",
        "timestep",
        "radtr",
        "matsolve",
        "conductionSolve",
        "CGSolve",
        "MatVecMult",
        "DotProduct",
        "Preconditioner",
        "BoundaryExchange",
        "PackBuffers",
        "UnpackBuffers",
        "HaloUpdate",
        "FluxCalc",
        "EOSUpdate",
        "OpacityCalc",
        "EnergyUpdate",
        "TemperatureUpdate",
        "CheckConvergence",
        "GlobalSum",
        "GlobalMax",
        "WriteDump",
        "ReadRestart",
        "DomainDecompose",
        "LoadBalanceCheck",
        "ZoneUpdate",
    ]
    + [f"kernel_{i:02d}" for i in range(50)]
)

MPI_FUNCTIONS: tuple[str, ...] = (
    "MPI_Allreduce",
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Waitall",
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allgather",
    "MPI_Send",
    "MPI_Recv",
)
