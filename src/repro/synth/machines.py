"""Declarative descriptions of the paper's machines.

Section 4 of the paper runs on four LLNL systems:

* **MCR** — a Linux (CHAOS) cluster with dual-Xeon nodes,
* **Frost** — an AIX cluster of 16-way IBM Power3 nodes,
* **UV** — "an early delivery component of the upcoming ASC Purple
  platform ... 128 8-way nodes with Power4+ processors running at
  1.5 GHz",
* **BG/L** — "only one partition with 16k nodes based on the PowerPC 440"
  during early installation.

The UV and BG/L numbers are the paper's own; MCR and Frost use public
2004-era configurations.  Emission may truncate node fan-out for the
giant machines (see :func:`repro.collect.machine.machine_to_ptdf`).
"""

from __future__ import annotations

from ..collect.machine import MachineDescription, Partition, ProcessorSpec

MCR = MachineDescription(
    grid="LLNL",
    name="MCR",
    operating_system="CHAOS-Linux-2.4",
    partitions=[
        Partition(
            name="batch",
            nodes=1152,
            processors_per_node=2,
            processor=ProcessorSpec(vendor="Intel", processor_type="Xeon", clock_mhz=2400),
        ),
        Partition(
            name="debug",
            nodes=32,
            processors_per_node=2,
            processor=ProcessorSpec(vendor="Intel", processor_type="Xeon", clock_mhz=2400),
        ),
    ],
    attributes={"interconnect": "Quadrics QsNet Elan3", "cluster type": "Linux"},
)

FROST = MachineDescription(
    grid="LLNL",
    name="Frost",
    operating_system="AIX-5.1",
    partitions=[
        Partition(
            name="batch",
            nodes=68,
            processors_per_node=16,
            processor=ProcessorSpec(vendor="IBM", processor_type="Power3", clock_mhz=375),
            node_prefix="frost",
        ),
    ],
    attributes={"interconnect": "IBM SP Switch2", "cluster type": "AIX"},
)

UV = MachineDescription(
    grid="LLNL",
    name="UV",
    operating_system="AIX-5.2",
    partitions=[
        Partition(
            name="batch",
            nodes=128,
            processors_per_node=8,
            processor=ProcessorSpec(vendor="IBM", processor_type="Power4+", clock_mhz=1500),
            node_prefix="uv",
        ),
    ],
    attributes={"interconnect": "IBM Federation", "cluster type": "AIX",
                "role": "ASC Purple early delivery"},
)

BGL = MachineDescription(
    grid="LLNL",
    name="BGL",
    operating_system="BLRTS",
    partitions=[
        Partition(
            name="R0",
            nodes=16384,
            processors_per_node=2,
            processor=ProcessorSpec(vendor="IBM", processor_type="PowerPC440", clock_mhz=700),
            node_prefix="bgl",
        ),
    ],
    attributes={"interconnect": "3D torus", "cluster type": "BlueGene",
                "peak teraflops": "130"},
)


def all_machines() -> list[MachineDescription]:
    return [MCR, FROST, UV, BGL]
