"""Synthetic mpiP profiling reports (paper Figure 8, Section 4.2).

The layout follows real mpiP 2.x reports: a header of ``@`` lines, the
per-task "MPI Time" section, the "Callsites" table mapping site ids to
(file, line, parent function, MPI call), the "Aggregate Time" top list,
and the per-rank "Callsite Time statistics" section whose rows carry
Count/Max/Mean/Min per (site, rank) plus a ``*`` roll-up row.

"The mpiP data ... contains multiple measurements broken down by process
or whole execution, MPI function, and callsite of the MPI function" — the
converter turns the caller/callee relation into two resource sets per
result, the Section 4.2 schema extension.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .workload import MPI_FUNCTIONS, WorkloadModel, exec_rng

#: Source files callsites live in (hypre-like names for SMG2000).
_CALLER_FILES = (
    ("smg_relax.c", "hypre_SMGRelax"),
    ("smg_solve.c", "hypre_SMGSolve"),
    ("smg_setup.c", "hypre_SMGSetup"),
    ("struct_communication.c", "hypre_CommPkgCreate"),
    ("struct_grid.c", "hypre_StructGridAssemble"),
    ("cyclic_reduction.c", "hypre_CyclicReduction"),
    ("semi_interp.c", "hypre_SemiInterp"),
    ("semi_restrict.c", "hypre_SemiRestrict"),
)


@dataclass(frozen=True)
class MpiPSpec:
    """Parameters of one synthetic mpiP report."""

    execution: str
    processes: int
    callsites: int = 25
    command: str = "smg2000 -n 40 40 40"
    version: str = "2.8.2"


def generate_mpip_report(
    spec: MpiPSpec,
    out_dir: str,
    model: Optional[WorkloadModel] = None,
) -> str:
    """Write one mpiP report file; returns its path."""
    model = model or WorkloadModel(parallel_seconds=280.0, serial_seconds=0.8)
    rng = exec_rng("mpip", spec.execution)
    os.makedirs(out_dir, exist_ok=True)
    p = spec.processes
    app_time_per_rank = model.total_time(p)
    mpi_frac = model.mpi_fraction(p)
    app_times = model.per_process_values(rng, app_time_per_rank, p)
    mpi_times = app_times * mpi_frac * rng.uniform(0.7, 1.3, size=p)
    mpi_times = np.minimum(mpi_times, app_times * 0.9)

    # Callsite table: id -> (file, line, caller, call)
    sites = []
    for sid in range(1, spec.callsites + 1):
        fname, caller = _CALLER_FILES[int(rng.integers(len(_CALLER_FILES)))]
        call = MPI_FUNCTIONS[int(rng.integers(len(MPI_FUNCTIONS)))][4:]  # strip MPI_
        line = int(rng.integers(40, 900))
        sites.append((sid, fname, line, caller, call))

    # Site shares of total MPI time.
    shares = model.function_shares(rng, spec.callsites)
    total_mpi_ms = float(mpi_times.sum()) * 1e3
    site_time_ms = shares * total_mpi_ms
    total_app_ms = float(app_times.sum()) * 1e3

    path = os.path.join(out_dir, f"{spec.execution}.mpip.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("@ mpiP\n")
        fh.write(f"@ Command : {spec.command}\n")
        fh.write(f"@ Version : {spec.version}\n")
        fh.write(f"@ MPI Task Assignment : {p} tasks\n")
        fh.write("\n")
        fh.write("@--- MPI Time (seconds) " + "-" * 50 + "\n")
        fh.write(f"{'Task':>4} {'AppTime':>12} {'MPITime':>12} {'MPI%':>8}\n")
        for r in range(p):
            pct = 100.0 * mpi_times[r] / app_times[r]
            fh.write(f"{r:>4} {app_times[r]:>12.4g} {mpi_times[r]:>12.4g} {pct:>8.2f}\n")
        total_pct = 100.0 * float(mpi_times.sum()) / float(app_times.sum())
        fh.write(
            f"{'*':>4} {float(app_times.sum()):>12.4g} "
            f"{float(mpi_times.sum()):>12.4g} {total_pct:>8.2f}\n"
        )
        fh.write("\n")
        fh.write(f"@--- Callsites: {spec.callsites} " + "-" * 50 + "\n")
        fh.write(f"{'ID':>3} {'Lev':>3} {'File':<24} {'Line':>5} "
                 f"{'Parent_Funct':<26} {'MPI_Call':<14}\n")
        for sid, fname, line, caller, call in sites:
            fh.write(f"{sid:>3} {0:>3} {fname:<24} {line:>5} {caller:<26} {call:<14}\n")
        fh.write("\n")
        fh.write("@--- Aggregate Time (top twenty, descending, milliseconds) "
                 + "-" * 15 + "\n")
        fh.write(f"{'Call':<16} {'Site':>5} {'Time':>12} {'App%':>7} {'MPI%':>7}\n")
        order = np.argsort(site_time_ms)[::-1]
        for i in order[:20]:
            sid, fname, line, caller, call = sites[i]
            t = site_time_ms[i]
            fh.write(
                f"{call:<16} {sid:>5} {t:>12.4g} "
                f"{100.0 * t / total_app_ms:>7.2f} {100.0 * t / total_mpi_ms:>7.2f}\n"
            )
        fh.write("\n")
        n_stat_rows = spec.callsites * (p + 1)
        fh.write(
            f"@--- Callsite Time statistics (all, milliseconds): {n_stat_rows} "
            + "-" * 15 + "\n"
        )
        fh.write(
            f"{'Name':<16} {'Site':>5} {'Rank':>5} {'Count':>8} "
            f"{'Max':>10} {'Mean':>10} {'Min':>10} {'App%':>7} {'MPI%':>7}\n"
        )
        for i, (sid, fname, line, caller, call) in enumerate(sites):
            per_rank_mean = site_time_ms[i] / p
            rank_totals = model.per_process_values(rng, per_rank_mean, p)
            counts = np.maximum(
                1, rng.poisson(lam=max(1.0, site_time_ms[i] / (p * 2.0)), size=p)
            )
            maxima = np.zeros(p)
            means = np.zeros(p)
            minima = np.zeros(p)
            for r in range(p):
                mean_t = rank_totals[r] / counts[r]
                spread = float(rng.uniform(1.2, 4.0))
                maxima[r] = mean_t * spread
                means[r] = mean_t
                minima[r] = mean_t / spread
                fh.write(
                    f"{call:<16} {sid:>5} {r:>5} {counts[r]:>8d} "
                    f"{maxima[r]:>10.4g} {means[r]:>10.4g} {minima[r]:>10.4g} "
                    f"{100.0 * rank_totals[r] / (app_times[r] * 1e3):>7.2f} "
                    f"{100.0 * rank_totals[r] / (mpi_times[r] * 1e3):>7.2f}\n"
                )
            fh.write(
                f"{call:<16} {sid:>5} {'*':>5} {int(counts.sum()):>8d} "
                f"{float(maxima.max()):>10.4g} {float(means.mean()):>10.4g} "
                f"{float(minima.min()):>10.4g} "
                f"{100.0 * site_time_ms[i] / total_app_ms:>7.2f} "
                f"{100.0 * site_time_ms[i] / total_mpi_ms:>7.2f}\n"
            )
    return path
