"""PerfTrack reproduction — performance experiment management over a DBMS.

Reproduces Karavanic et al., "Integrating Database Technology with
Comparison-based Parallel Performance Diagnosis: The PerfTrack Performance
Experiment Management Tool" (SC 2005).

Layers (bottom-up):

* :mod:`repro.minidb` — an embedded relational DBMS written from scratch
  (the Oracle/PostgreSQL stand-in), DB-API 2.0.
* :mod:`repro.dbapi` — backend abstraction (minidb or stdlib sqlite3).
* :mod:`repro.ptdf` — the PTdf data format: records, parser, writer, base
  resource types, PTdfGen.
* :mod:`repro.core` — the resource/result model, Figure-1 schema, the
  PTDataStore load/lookup/query API, pr-filters, comparison & diagnosis.
* :mod:`repro.collect` — PTbuild/PTrun capture and machine descriptions.
* :mod:`repro.tools` — converters for IRS, SMG2000, mpiP, PMAPI, Paradyn.
* :mod:`repro.synth` — synthetic machines, workloads and tool output.
* :mod:`repro.gui` — headless view-models of the PerfTrack GUI.
* :mod:`repro.studies` — the paper's three case studies end to end.

Quickstart::

    from repro import PTDataStore, PrFilter, ByName
    from repro.core.query import QueryEngine

    store = PTDataStore()            # in-memory minidb backend
    store.load_file("run.ptdf")
    engine = QueryEngine(store)
    results = engine.fetch(PrFilter([ByName("/Frost/batch")]))
"""

from .core import (
    AttributeClause,
    ByAttributes,
    ByName,
    ByType,
    Expansion,
    LoadStats,
    PerformanceResult,
    PrFilter,
    PTDataStore,
    Resource,
    ResourceFamily,
    ResourceType,
)
from .core.query import QueryEngine

__version__ = "1.0.0"

__all__ = [
    "PTDataStore",
    "QueryEngine",
    "LoadStats",
    "PrFilter",
    "ResourceFamily",
    "ByType",
    "ByName",
    "ByAttributes",
    "AttributeClause",
    "Expansion",
    "Resource",
    "ResourceType",
    "PerformanceResult",
    "__version__",
]
