"""``ptrack`` — PerfTrack's script interface as a command-line tool.

The paper's script-based interface (Section 3.3) offered data collection,
loading and querying from Python; this CLI packages the same operations:

* ``ptrack init``      create a data store (minidb or sqlite file)
* ``ptrack load``      load PTdf files (lint-gated; ``--force`` overrides)
* ``ptrack lint``      statically validate PTdf files (also ``pt-lint``)
* ``ptrack gen``       run PTdfGen over a directory of raw tool output
* ``ptrack ls``        list applications / executions / metrics / tools /
                       resource types / resources of a type
* ``ptrack report``    the simple reports (summary, application, execution)
* ``ptrack query``     evaluate a pr-filter and print/export the results
* ``ptrack attrs``     show a resource's attributes (the GUI's viewer)
* ``ptrack compare``   align two executions and report regressions
* ``ptrack stats``     self-instrumentation: run a workload with the
                       metrics registry enabled and print the snapshot
                       (text, ``--json`` or Prometheus ``--prom``)
* ``ptrack profile``   statement profiler: run a workload with the
                       profiler enabled and print per-statement stats,
                       recorded plans (``--flight``) and planner drift
* ``ptrack serve``     serve a minidb database to concurrent sessions
                       over a JSON-lines socket protocol

Exit code 0 on success, 2 on usage errors, 1 on operational failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import obs
from .core import (
    AttributeClause,
    ByAttributes,
    ByName,
    ByType,
    Expansion,
    PrFilter,
    PTDataStore,
)
from .core.comparison import compare_executions
from .core.query import QueryEngine
from .core.reports import application_report, execution_report, store_summary
from .gui.mainwindow import MainWindow
from .minidb.errors import Error as DbError
from .ptdf.ptdfgen import PTdfGen
from .tools import ALL_CONVERTERS


def _open_store(args, initialize: bool = False) -> PTDataStore:
    return PTDataStore(
        backend_kind=args.backend,
        database=args.db,
        initialize=initialize or args.db == ":memory:",
    )


def _add_db_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--db", default=":memory:", help="database file (default in-memory)")
    p.add_argument(
        "--backend",
        default="minidb",
        choices=("minidb", "sqlite"),
        help="DBMS backend (default minidb)",
    )


def cmd_init(args) -> int:
    store = PTDataStore(backend_kind=args.backend, database=args.db, initialize=True)
    store.commit()
    store.close()
    print(f"initialised {args.backend} data store at {args.db}")
    return 0


def cmd_load(args) -> int:
    from .core.pload import resolve_workers
    from .ptdf.lint import context_from_store, has_errors, lint_files

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.shards or workers >= 2:
        return _cmd_load_parallel(args, workers)

    # Per-file progress (records/s from the loader counters): on by
    # default when stderr is a terminal, forced by --progress, silenced
    # by --quiet.
    show_progress = args.progress or (sys.stderr.isatty() and not args.quiet)
    was_enabled = obs.metrics.enabled
    if show_progress:
        obs.metrics.enable()
    if args.trace:
        obs.trace.enable()
    store = _open_store(args, initialize=True)
    try:
        if not args.force:
            diagnostics = lint_files(args.files, context_from_store(store))
            for diag in diagnostics:
                print(diag, file=sys.stderr)
            if has_errors(diagnostics):
                print(
                    "load refused: the files above have lint errors "
                    "(use --force to load anyway)",
                    file=sys.stderr,
                )
                store.close()
                return 1
        records_loaded = obs.metrics.counter("ptdf.load.records")
        for path in args.files:
            before = records_loaded.value
            t0 = obs.now()
            stats = store.load_file(path)
            elapsed = obs.now() - t0
            if not args.quiet:
                print(
                    f"{path}: {stats.results} results, {stats.resources} resources, "
                    f"{stats.executions} executions"
                )
            if show_progress:
                n = records_loaded.value - before
                rate = n / elapsed if elapsed > 0 else 0.0
                print(
                    f"{path}: {n} records in {elapsed:.2f}s ({rate:,.0f} records/s)",
                    file=sys.stderr,
                )
        store.commit()
        store.close()
    finally:
        if args.trace:
            spans = obs.trace.save(args.trace)
            obs.trace.disable()
            print(f"# wrote {spans} spans to {args.trace}", file=sys.stderr)
        if not was_enabled:
            obs.metrics.disable()
    return 0


def _cmd_load_parallel(args, workers: int) -> int:
    """``ptrack load --workers N [--shards N]``: the pload/shards path.

    ``--shards`` makes the target a :class:`ShardedPTDataStore` (``--db``
    names its directory; in-memory shards otherwise — useful only with
    ``--trace``/benchmarks since they vanish on exit).  Lint gating,
    per-file summaries and tracing match the serial path; the only
    difference is that lint *warnings* print only alongside errors.
    """
    from .core.pload import ParallelLoadError, load_files
    from .core.shards import ShardedPTDataStore
    from .ptdf.lint import PTdfLintError

    if args.trace:
        obs.trace.enable()
    if args.shards:
        store = ShardedPTDataStore(
            n_shards=args.shards,
            backend_kind=args.backend,
            directory=None if args.db == ":memory:" else args.db,
        )
    else:
        store = _open_store(args, initialize=True)
    try:
        def on_file(path, stats):
            if not args.quiet:
                print(
                    f"{path}: {stats.results} results, {stats.resources} "
                    f"resources, {stats.executions} executions"
                )

        try:
            load_files(
                store, args.files, workers=workers,
                lint=not args.force, on_file=on_file,
            )
        except PTdfLintError as exc:
            for diag in exc.diagnostics:
                print(diag, file=sys.stderr)
            print(
                "load refused: the files above have lint errors "
                "(use --force to load anyway)",
                file=sys.stderr,
            )
            return 1
        except ParallelLoadError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        store.commit()
    finally:
        store.close()
        if args.trace:
            spans = obs.trace.save(args.trace)
            obs.trace.disable()
            print(f"# wrote {spans} spans to {args.trace}", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    from .ptdf.lint import Linter, context_from_store, has_errors

    context = None
    if args.db != ":memory:":
        store = _open_store(args)
        context = context_from_store(store)
        store.close()
    linter = Linter(context)
    errors = warnings = 0
    for path in args.files:
        for diag in linter.lint_file(path):
            if diag.severity == "error":
                errors += 1
            else:
                warnings += 1
            if diag.severity == "error" or not args.quiet:
                print(diag)
    print(f"# {errors} error(s), {warnings} warning(s)", file=sys.stderr)
    if errors or (warnings and args.strict):
        return 1
    return 0


def pt_lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``pt-lint`` — standalone PTdf linter (no database needed)."""
    parser = argparse.ArgumentParser(
        prog="pt-lint", description="statically validate PTdf files"
    )
    _add_db_options(parser)
    parser.add_argument("files", nargs="+", help="PTdf files to check")
    parser.add_argument(
        "--strict", action="store_true", help="exit 1 on warnings too"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="report errors only"
    )
    args = parser.parse_args(argv)
    try:
        return cmd_lint(args)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_gen(args) -> int:
    gen = PTdfGen(ALL_CONVERTERS)
    reports = gen.generate(args.directory, args.index, out_dir=args.out)
    for rep in reports:
        print(
            f"{rep.execution}: {len(rep.files)} files -> {rep.records} records "
            f"({rep.results} results) -> {rep.output_path}"
        )
        for skipped in rep.skipped:
            print(f"  skipped (no converter): {skipped}")
    return 0


def cmd_ls(args) -> int:
    store = _open_store(args)
    kind = args.what
    if kind == "applications":
        rows = store.applications()
    elif kind == "executions":
        rows = store.executions(args.application)
    elif kind == "metrics":
        rows = store.metrics()
    elif kind == "tools":
        rows = store.tools()
    elif kind == "types":
        rows = [t.name for t in store.resource_types()]
    elif kind == "resources":
        if not args.type:
            print("ls resources requires --type", file=sys.stderr)
            return 2
        rows = [r.name for r in store.resources_of_type(args.type)]
    else:  # pragma: no cover - argparse restricts choices
        return 2
    for row in rows:
        print(row)
    store.close()
    return 0


def cmd_report(args) -> int:
    store = _open_store(args)
    if args.kind == "summary":
        print(store_summary(store))
    elif args.kind == "application":
        if not args.name:
            print("report application requires NAME", file=sys.stderr)
            return 2
        print(application_report(store, args.name))
    else:
        if not args.name:
            print("report execution requires NAME", file=sys.stderr)
            return 2
        print(execution_report(store, args.name))
    store.close()
    return 0


def _parse_attr_clause(text: str) -> AttributeClause:
    for op in ("<=", ">=", "!=", "=", "<", ">", "~"):
        if op in text:
            name, _, value = text.partition(op)
            comparator = "contains" if op == "~" else op
            return AttributeClause(name.strip(), comparator, value.strip())
    raise ValueError(f"cannot parse attribute clause {text!r}")


def cmd_query(args) -> int:
    if args.trace:
        obs.trace.enable()
    try:
        return _cmd_query_inner(args)
    finally:
        if args.trace:
            spans = obs.trace.save(args.trace)
            obs.trace.disable()
            print(f"# wrote {spans} spans to {args.trace}", file=sys.stderr)


def _cmd_query_inner(args) -> int:
    store = _open_store(args)
    engine = QueryEngine(store)
    prf = PrFilter()
    expansion = Expansion(args.relatives)
    for name in args.name or ():
        prf.add(ByName(name, expansion))
    for type_path in args.type or ():
        prf.add(ByType(type_path, Expansion.NONE))
    for clause_text in args.attr or ():
        clause = _parse_attr_clause(clause_text)
        prf.add(ByAttributes((clause,), expansion=Expansion.NONE))
    families = store.resolve_prfilter(prf)
    for f, fam in zip(prf.filters, families):
        print(f"# family {f.describe()}: {engine.count_for_family(fam)} match alone")
    ids = engine.result_ids(families)
    print(f"# whole filter: {len(ids)} results")
    if args.count_only:
        store.close()
        return 0
    results = engine.fetch_results(ids)
    window = MainWindow(engine)
    window.show_results(results)
    for column in args.column or ():
        window.add_column(column)
    if args.sort:
        window.sort(args.sort, descending=args.desc)
    if args.limit:
        window.rows = window.rows[: args.limit]
    if args.csv:
        window.save_csv(args.csv)
        print(f"# wrote {len(window.rows)} rows to {args.csv}")
    else:
        print("\t".join(window.columns))
        for row in window.as_table():
            print("\t".join(str(c) for c in row))
    store.close()
    return 0


def cmd_attrs(args) -> int:
    store = _open_store(args)
    res = store.resource_by_name(args.resource)
    if res is None:
        print(f"no such resource: {args.resource}", file=sys.stderr)
        return 1
    print(f"{res.name}  (type {res.type_name})")
    for a in store.attributes_of(res.id):
        print(f"  {a.name} = {a.value}")
    for c in store.constraints_of(res.id):
        print(f"  -> constraint: {c.name}")
    store.close()
    return 0


def cmd_compare(args) -> int:
    store = _open_store(args)
    cmp = compare_executions(store, args.left, args.right, metric=args.metric)
    print(
        f"{args.left} vs {args.right}: {len(cmp.common)} common, "
        f"{len(cmp.only_left)} only-left, {len(cmp.only_right)} only-right"
    )
    for pair in cmp.regressions(args.threshold):
        sig = next(iter(pair.signature), "")
        print(f"  REGRESSION {pair.metric} {sig}: "
              f"{pair.left:.6g} -> {pair.right:.6g} (x{pair.ratio:.2f})")
    store.close()
    return 0


def cmd_chart(args) -> int:
    """The Figure-5 chart from the command line: min/max of one metric
    family across executions, as ASCII, CSV or SVG."""
    from .gui.barchart import min_max_chart
    from .gui.svg import barchart_to_svg, save_svg

    store = _open_store(args)
    engine = QueryEngine(store)
    executions = args.executions or store.executions(args.application)
    categories, minima, maxima = [], [], []
    for execution in executions:
        prf = PrFilter([ByName(f"/{execution}", Expansion.DESCENDANTS)])
        if args.name:
            prf.add(ByName(args.name, Expansion.NONE))
        by_metric = {
            r.metric: r.value
            for r in engine.fetch(prf)
            if r.metric in (f"{args.metric} (min)", f"{args.metric} (max)")
        }
        lo = by_metric.get(f"{args.metric} (min)")
        hi = by_metric.get(f"{args.metric} (max)")
        if lo is not None and hi is not None:
            categories.append(execution)
            minima.append(lo)
            maxima.append(hi)
    if not categories:
        print("no min/max data matched", file=sys.stderr)
        store.close()
        return 1
    title = f"{args.name or args.metric} min/max"
    chart = min_max_chart(title, categories, minima, maxima, value_label=args.metric)
    if args.svg:
        save_svg(barchart_to_svg(chart), args.svg)
        print(f"wrote {args.svg}")
    elif args.csv:
        chart.save_csv(args.csv)
        print(f"wrote {args.csv}")
    else:
        print(chart.render_ascii())
    store.close()
    return 0


def cmd_predict(args) -> int:
    """Fit a scaling model to measured executions, report predicted vs
    actual, and optionally store extrapolations (Section-6 extension)."""
    from .core.predictions import (
        compare_predictions,
        fit_model_to_history,
        store_predictions,
    )

    store = _open_store(args)
    executions = args.executions or store.executions(args.application)
    try:
        model, points = fit_model_to_history(store, executions, args.metric)
    except ValueError as exc:
        print(f"cannot fit model: {exc}", file=sys.stderr)
        store.close()
        return 1
    print(model.describe())
    print(f"{'execution':<28}{'nproc':>6}{'actual':>12}{'predicted':>12}{'rel err':>9}")
    for row in compare_predictions(store, model, executions, args.metric):
        print(
            f"{row.execution:<28}{row.processes:>6}{row.actual:>12.4g}"
            f"{row.predicted:>12.4g}{row.relative_error:>9.1%}"
        )
    if args.extrapolate:
        created = store_predictions(
            store, model, args.application or "unknown", args.metric,
            args.extrapolate,
        )
        for execution, p in zip(created, args.extrapolate):
            print(f"stored {execution}: predicted {model.predict(p):.4g}")
    store.close()
    return 0


def cmd_stats(args) -> int:
    """Run a small workload with the metrics registry on and report it.

    Loads the given PTdf files (if any), exercises the query layer once,
    then prints the registry snapshot as text, JSON (``--json``) or
    Prometheus exposition (``--prom``).  ``--ptdf FILE`` additionally
    renders the snapshot as PTdf performance results — PerfTrack
    describing itself in its own data format.
    """
    was_enabled = obs.metrics.enabled
    obs.metrics.enable()
    obs.metrics.reset()
    if args.trace:
        obs.trace.enable()
    try:
        store = _open_store(args, initialize=True)
        for path in args.files:
            store.load_file(path)
        store.commit()
        # Exercise the query path so query.* instruments fire too; the
        # per-family counts before the whole-filter evaluation mirror the
        # GUI's live match counts (Figure 3) and re-probe the same SQL.
        engine = QueryEngine(store)
        engine.count_for_filter([])
        for execution in store.executions():
            prf = PrFilter([ByName(f"/{execution}", Expansion.DESCENDANTS)])
            families = store.resolve_prfilter(prf)
            for fam in families:
                engine.count_for_family(fam)
            engine.fetch_results(engine.result_ids(families))
            break
        store.close()
        snapshot = obs.metrics.snapshot()
        if args.json:
            print(obs.render_json(snapshot))
        elif args.prom:
            print(obs.render_prometheus(snapshot), end="")
        else:
            print(obs.render_text(snapshot))
        if args.ptdf:
            text = obs.to_ptdf(args.execution, snapshot=snapshot)
            with open(args.ptdf, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"# wrote telemetry PTdf to {args.ptdf}", file=sys.stderr)
    finally:
        if args.trace:
            spans = obs.trace.save(args.trace)
            obs.trace.disable()
            print(f"# wrote {spans} spans to {args.trace}", file=sys.stderr)
        if not was_enabled:
            obs.metrics.disable()
    return 0


def cmd_profile(args) -> int:
    """Run a workload with the statement profiler on and report it.

    Loads the given PTdf files (if any) and exercises the query layer
    once — the same workload as ``ptrack stats`` — with the profiler
    aggregating per-fingerprint statement statistics and flight-recording
    plans that run for at least ``--slow-ms`` (or every ``--sample``-th
    statement).  Prints the top statements by ``--sort``, the recorded
    plans with per-operator estimate-vs-actual rows (``--flight``), or
    JSON (``--json``).  ``--ptdf FILE`` additionally writes the profile
    as PTdf so it can be loaded back into a store and compared across
    runs.
    """
    was_enabled = obs.profiler.enabled
    obs.profiler.enable(
        slow_seconds=args.slow_ms / 1000.0, sample_every=args.sample
    )
    obs.profiler.reset()
    try:
        store = _open_store(args, initialize=True)
        for path in args.files:
            store.load_file(path)
        store.commit()
        engine = QueryEngine(store)
        engine.count_for_filter([])
        for execution in store.executions():
            prf = PrFilter([ByName(f"/{execution}", Expansion.DESCENDANTS)])
            families = store.resolve_prfilter(prf)
            for fam in families:
                engine.count_for_family(fam)
            engine.fetch_results(engine.result_ids(families))
            break
        store.close()
        profile = obs.profiler.snapshot()
        if args.json:
            print(obs.render_profile_json(profile, top=args.top, sort=args.sort))
        elif args.flight:
            print(obs.render_flight_text(profile))
        else:
            print(obs.render_profile_text(profile, top=args.top, sort=args.sort))
        if args.ptdf:
            text = obs.profile_to_ptdf(args.execution, profile=profile)
            with open(args.ptdf, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"# wrote profile PTdf to {args.ptdf}", file=sys.stderr)
    finally:
        if not was_enabled:
            obs.profiler.disable()
    return 0


def cmd_serve(args) -> int:
    """Serve a minidb database to concurrent sessions.

    Runs the JSON-lines line-protocol server (``repro.minidb.server``)
    over one shared engine: each client socket gets its own session with
    snapshot-isolated reads and per-table writer locks.  ``--port 0``
    picks an ephemeral port and prints it, which is how the load
    generator and tests attach.
    """
    from .minidb.connection import Engine
    from .minidb.server import MiniDbServer

    engine = Engine(args.db)
    server = MiniDbServer(engine, host=args.host, port=args.port)
    print(f"minidb serving {args.db} on {server.host}:{server.port}")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        engine.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ptrack", description="PerfTrack experiment management CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a data store")
    _add_db_options(p)
    p.set_defaults(fn=cmd_init)

    p = sub.add_parser("load", help="load PTdf files")
    _add_db_options(p)
    p.add_argument("files", nargs="+", help="PTdf files")
    p.add_argument(
        "--force",
        action="store_true",
        help="load even when the files have lint errors",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-file summaries and progress"
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="force per-file records/s progress lines (default when stderr is a TTY)",
    )
    p.add_argument("--trace", help="write a Chrome-trace JSON of the load to FILE")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="parse and lint files in N worker processes "
        "(default $PTRACK_WORKERS, else serial)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="load into a sharded store with N fact shards "
        "(--db names its directory; default unsharded)",
    )
    p.set_defaults(fn=cmd_load)

    p = sub.add_parser("lint", help="statically validate PTdf files (pt-lint)")
    _add_db_options(p)
    p.add_argument("files", nargs="+", help="PTdf files to check")
    p.add_argument("--strict", action="store_true", help="exit 1 on warnings too")
    p.add_argument("--quiet", action="store_true", help="report errors only")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("gen", help="PTdfGen: raw tool output -> PTdf")
    p.add_argument("directory", help="directory of raw tool output")
    p.add_argument("index", help="index file (one execution per line)")
    p.add_argument("--out", required=True, help="output directory for .ptdf files")
    p.set_defaults(fn=cmd_gen)

    p = sub.add_parser("ls", help="list store contents")
    _add_db_options(p)
    p.add_argument(
        "what",
        choices=("applications", "executions", "metrics", "tools", "types", "resources"),
    )
    p.add_argument("--application", help="restrict executions to one application")
    p.add_argument("--type", help="resource type for 'ls resources'")
    p.set_defaults(fn=cmd_ls)

    p = sub.add_parser("report", help="simple text reports")
    _add_db_options(p)
    p.add_argument("kind", choices=("summary", "application", "execution"))
    p.add_argument("name", nargs="?", help="application or execution name")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("query", help="evaluate a pr-filter")
    _add_db_options(p)
    p.add_argument("--name", action="append", help="resource family by name (repeatable)")
    p.add_argument("--type", action="append", help="resource family by type (repeatable)")
    p.add_argument(
        "--attr",
        action="append",
        help="attribute clause, e.g. 'clock MHz>1000' or 'vendor~IBM' (contains)",
    )
    p.add_argument(
        "--relatives",
        default="D",
        choices=("N", "A", "D", "B"),
        help="A/D/B/N expansion for --name families (default D)",
    )
    p.add_argument("--column", action="append", help="free-resource type to add as a column")
    p.add_argument("--sort", help="column to sort by")
    p.add_argument("--desc", action="store_true", help="sort descending")
    p.add_argument("--limit", type=int, help="show at most N rows")
    p.add_argument("--csv", help="write the table to a CSV file")
    p.add_argument("--count-only", action="store_true", help="print counts and stop")
    p.add_argument("--trace", help="write a Chrome-trace JSON of the query to FILE")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("attrs", help="show a resource's attributes")
    _add_db_options(p)
    p.add_argument("resource", help="full resource name")
    p.set_defaults(fn=cmd_attrs)

    p = sub.add_parser("chart", help="min/max bar chart across executions (Fig. 5)")
    _add_db_options(p)
    p.add_argument("--metric", required=True, help="metric family, e.g. 'CPU time'")
    p.add_argument("--name", help="restrict to one resource (e.g. a function)")
    p.add_argument("--application", help="chart all executions of an application")
    p.add_argument("executions", nargs="*", help="executions to chart")
    p.add_argument("--svg", help="write an SVG file instead of ASCII")
    p.add_argument("--csv", help="write a CSV file instead of ASCII")
    p.set_defaults(fn=cmd_chart)

    p = sub.add_parser("predict", help="fit + compare a scaling model (Section 6)")
    _add_db_options(p)
    p.add_argument("--metric", required=True)
    p.add_argument("--application", help="fit over all executions of an application")
    p.add_argument("executions", nargs="*", help="executions to fit over")
    p.add_argument(
        "--extrapolate", type=int, nargs="+", metavar="NPROC",
        help="store predictions at these process counts",
    )
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("compare", help="align two executions")
    _add_db_options(p)
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--metric", help="restrict to one metric")
    p.add_argument("--threshold", type=float, default=1.10, help="regression ratio")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "stats", help="self-instrumentation: run a workload and print engine metrics"
    )
    _add_db_options(p)
    p.add_argument("files", nargs="*", help="PTdf files to load as the workload")
    p.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    p.add_argument(
        "--prom", action="store_true", help="print Prometheus exposition format"
    )
    p.add_argument("--ptdf", help="also write the snapshot as PTdf to FILE")
    p.add_argument(
        "--execution",
        default="ptrack-telemetry",
        help="execution name for --ptdf output (default ptrack-telemetry)",
    )
    p.add_argument("--trace", help="write a Chrome-trace JSON of the workload to FILE")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "profile",
        help="statement profiler: run a workload and print per-statement stats",
    )
    _add_db_options(p)
    p.add_argument("files", nargs="*", help="PTdf files to load as the workload")
    p.add_argument(
        "--top", type=int, default=10, help="show the N hottest statements (default 10)"
    )
    p.add_argument(
        "--sort",
        default="time",
        choices=("time", "calls", "mean", "rows"),
        help="statement ranking (default total time)",
    )
    p.add_argument("--json", action="store_true", help="print the profile as JSON")
    p.add_argument(
        "--flight",
        action="store_true",
        help="print recorded plans with per-operator estimate vs actual rows",
    )
    p.add_argument(
        "--slow-ms",
        type=float,
        default=10.0,
        help="flight-record statements at least this slow (default 10 ms)",
    )
    p.add_argument(
        "--sample",
        type=int,
        default=0,
        help="also flight-record every Nth statement (default off)",
    )
    p.add_argument("--ptdf", help="also write the profile as PTdf to FILE")
    p.add_argument(
        "--execution",
        default="ptrack-profile",
        help="execution name for --ptdf output (default ptrack-profile)",
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "serve", help="serve a minidb database to concurrent sessions"
    )
    p.add_argument("--db", default=":memory:", help="database file (default in-memory)")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=7474,
        help="TCP port (0 = pick an ephemeral port; default 7474)",
    )
    p.set_defaults(fn=cmd_serve)

    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        help="diagnostic logging level (also $PTRACK_LOG; default warning)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs.configure_logging(args.log_level)
    try:
        return args.fn(args)
    except BrokenPipeError:
        return 0  # e.g. `ptrack ls | head`
    except DbError as exc:
        print(f"database error: {exc}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
