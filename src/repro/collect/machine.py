"""Machine descriptions: declarative specs -> grid-hierarchy PTdf.

Paper Section 4.1: "a full set of descriptive machine data was already in
our PerfTrack system, from previous studies, so no further collection or
entry of machine description was required."  A
:class:`MachineDescription` is that descriptive data; emitting it once per
machine mirrors the paper's workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ptdf.writer import PTdfWriter


@dataclass(frozen=True)
class ProcessorSpec:
    """Per-processor attributes (paper Section 2.1's example)."""

    vendor: str
    processor_type: str
    clock_mhz: int


@dataclass(frozen=True)
class Partition:
    """One machine partition: a set of nodes with identical processors."""

    name: str
    nodes: int
    processors_per_node: int
    processor: ProcessorSpec
    node_prefix: str = "node"

    @property
    def total_processors(self) -> int:
        return self.nodes * self.processors_per_node


@dataclass
class MachineDescription:
    """A machine within a grid: partitions of nodes of processors."""

    grid: str  # top-level grid resource base name
    name: str
    partitions: list[Partition] = field(default_factory=list)
    operating_system: Optional[str] = None
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def total_nodes(self) -> int:
        return sum(p.nodes for p in self.partitions)

    @property
    def total_processors(self) -> int:
        return sum(p.total_processors for p in self.partitions)

    def node_name(self, partition: Partition, index: int) -> str:
        return (
            f"/{self.grid}/{self.name}/{partition.name}/"
            f"{partition.node_prefix}{index}"
        )

    def processor_name(self, partition: Partition, node_index: int, proc: int) -> str:
        return self.node_name(partition, node_index) + f"/p{proc}"


def machine_to_ptdf(
    machine: MachineDescription,
    writer: PTdfWriter,
    max_nodes_per_partition: Optional[int] = None,
) -> int:
    """Emit grid-hierarchy resources for *machine*; returns resources emitted.

    ``max_nodes_per_partition`` truncates enormous machines (a 16k-node
    BG/L partition) when a study only touched a subset; attributes still
    record the true totals so the description stays accurate.
    """
    count = 0

    def res(name: str, type_path: str) -> None:
        nonlocal count
        writer.add_resource(name, type_path)
        count += 1

    grid_res = f"/{machine.grid}"
    res(grid_res, "grid")
    mach_res = f"{grid_res}/{machine.name}"
    res(mach_res, "grid/machine")
    writer.add_resource_attribute(mach_res, "total nodes", str(machine.total_nodes))
    writer.add_resource_attribute(
        mach_res, "total processors", str(machine.total_processors)
    )
    if machine.operating_system:
        os_res = f"/{machine.operating_system}"
        writer.add_resource(os_res, "operatingSystem")
        writer.add_resource_attribute(
            mach_res, "operating system", os_res, attr_type="resource"
        )
    for key, value in machine.attributes.items():
        writer.add_resource_attribute(mach_res, key, value)
    for part in machine.partitions:
        part_res = f"{mach_res}/{part.name}"
        res(part_res, "grid/machine/partition")
        writer.add_resource_attribute(part_res, "nodes", str(part.nodes))
        writer.add_resource_attribute(
            part_res, "processors per node", str(part.processors_per_node)
        )
        emit_nodes = part.nodes
        if max_nodes_per_partition is not None:
            emit_nodes = min(emit_nodes, max_nodes_per_partition)
        for n in range(emit_nodes):
            node_res = machine.node_name(part, n)
            res(node_res, "grid/machine/partition/node")
            for p in range(part.processors_per_node):
                proc_res = machine.processor_name(part, n, p)
                res(proc_res, "grid/machine/partition/node/processor")
                writer.add_resource_attribute(proc_res, "vendor", part.processor.vendor)
                writer.add_resource_attribute(
                    proc_res, "processor type", part.processor.processor_type
                )
                writer.add_resource_attribute(
                    proc_res, "clock MHz", str(part.processor.clock_mhz)
                )
    return count
