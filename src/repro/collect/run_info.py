"""PTrun — automatic capture of runtime-environment information.

Paper Section 3.3: "The output of this script is a file containing a
variety of data about the execution and its environment, including:
environment variables, number of processes, runtime libraries used, and
the input deck name and timestamp."  Library attributes recorded include
"the version, size, type (e.g., MPI or thread library), and timestamp".
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ptdf.writer import PTdfWriter


@dataclass(frozen=True)
class LibraryInfo:
    """One runtime (dynamic) library used by the execution."""

    name: str
    version: str = ""
    size: int = 0
    kind: str = ""  # e.g. "MPI", "thread", "math"
    timestamp: str = ""


@dataclass
class RunInfo:
    """Everything PTrun captures for one run."""

    execution: str
    machine: str
    node: str
    num_processes: int = 1
    num_threads: int = 1
    environment: dict[str, str] = field(default_factory=dict)
    libraries: list[LibraryInfo] = field(default_factory=list)
    input_deck: Optional[str] = None
    input_deck_timestamp: Optional[str] = None
    submission: Optional[str] = None  # batch job id / queue
    timestamp: str = ""


def capture_run_environment(
    execution: str,
    num_processes: int = 1,
    num_threads: int = 1,
    env: Optional[dict[str, str]] = None,
    library_paths: Iterable[str] = (),
) -> RunInfo:
    """Snapshot the local runtime environment for *execution*.

    ``library_paths`` point at shared objects to record; their size and
    mtime become library attributes (version detection is name-based:
    ``libfoo.so.1.2`` -> ``1.2``).
    """
    uname = platform.uname()
    info = RunInfo(
        execution=execution,
        machine=uname.machine,
        node=uname.node,
        num_processes=num_processes,
        num_threads=num_threads,
        environment=dict(env if env is not None else os.environ),
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )
    for path in library_paths:
        name = os.path.basename(path)
        version = ""
        if ".so." in name:
            version = name.split(".so.", 1)[1]
        size = 0
        ts = ""
        try:
            st = os.stat(path)
            size = st.st_size
            ts = time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(st.st_mtime))
        except OSError:
            pass
        kind = ""
        low = name.lower()
        if "mpi" in low:
            kind = "MPI"
        elif "pthread" in low or "thread" in low:
            kind = "thread"
        info.libraries.append(LibraryInfo(name, version, size, kind, ts))
    return info


class PTRun:
    """The run-wrapper entry point (synthetic-friendly like PTBuild)."""

    def capture(self, execution: str, **kwargs) -> RunInfo:
        return capture_run_environment(execution, **kwargs)


def run_to_ptdf(
    info: RunInfo,
    writer: PTdfWriter,
    interesting_env: Iterable[str] = ("PATH", "LD_LIBRARY_PATH", "OMP_NUM_THREADS"),
) -> str:
    """Emit PTdf for a run's environment; returns the environment resource name.

    The collected information lands in resource hierarchies of base type
    ``environment`` and ``execution`` plus ``inputDeck``/``submission``
    resources, as the paper describes.
    """
    env_res = f"/{info.execution}-env"
    writer.add_resource(env_res, "environment")
    writer.add_resource_attribute(env_res, "machine", info.machine)
    writer.add_resource_attribute(env_res, "node", info.node)
    writer.add_resource_attribute(env_res, "run timestamp", info.timestamp)
    for key in interesting_env:
        if key in info.environment:
            writer.add_resource_attribute(env_res, f"env {key}", info.environment[key])
    exec_res = f"/{info.execution}"
    writer.add_resource(exec_res, "execution", info.execution)
    writer.add_resource_attribute(exec_res, "number of processes", str(info.num_processes))
    writer.add_resource_attribute(exec_res, "number of threads", str(info.num_threads))
    for lib in info.libraries:
        lib_res = f"/{info.execution}-env/{lib.name}"
        writer.add_resource(lib_res, "environment/module")
        if lib.version:
            writer.add_resource_attribute(lib_res, "version", lib.version)
        if lib.size:
            writer.add_resource_attribute(lib_res, "size", str(lib.size))
        if lib.kind:
            writer.add_resource_attribute(lib_res, "type", lib.kind)
        if lib.timestamp:
            writer.add_resource_attribute(lib_res, "timestamp", lib.timestamp)
    if info.input_deck:
        deck_res = f"/{info.input_deck}"
        writer.add_resource(deck_res, "inputDeck")
        if info.input_deck_timestamp:
            writer.add_resource_attribute(deck_res, "timestamp", info.input_deck_timestamp)
        writer.add_resource_attribute(exec_res, "input deck", deck_res, attr_type="resource")
    if info.submission:
        sub_res = f"/{info.submission}"
        writer.add_resource(sub_res, "submission")
        writer.add_resource_attribute(exec_res, "submission", sub_res, attr_type="resource")
    return env_res
