"""Automatic collection of build- and runtime-descriptive data.

Paper Section 3.3: PerfTrack "includes scripts for automatic capture of
build- and runtime-related information" — a make wrapper (PTbuild) that
records the build environment, compilers (unwrapping MPI compiler
wrappers), flags and linked libraries; and a run wrapper (PTrun) that
records environment variables, process counts, runtime libraries, and the
input deck.  Machine descriptions populate the grid hierarchy.
"""

from .build_info import (
    BuildInfo,
    CompilerInvocation,
    PTBuild,
    build_to_ptdf,
    capture_build_environment,
    parse_make_output,
    unwrap_mpi_wrapper,
)
from .run_info import (
    LibraryInfo,
    PTRun,
    RunInfo,
    capture_run_environment,
    run_to_ptdf,
)
from .machine import MachineDescription, Partition, ProcessorSpec, machine_to_ptdf

__all__ = [
    "BuildInfo",
    "CompilerInvocation",
    "PTBuild",
    "parse_make_output",
    "unwrap_mpi_wrapper",
    "capture_build_environment",
    "build_to_ptdf",
    "RunInfo",
    "LibraryInfo",
    "PTRun",
    "capture_run_environment",
    "run_to_ptdf",
    "MachineDescription",
    "Partition",
    "ProcessorSpec",
    "machine_to_ptdf",
]
