"""PTbuild — automatic capture of build information.

Two categories (paper Section 3.3):

* **build environment** — operating system name/version/revision, build
  machine/node, the environment settings in the build user's shell;
* **compilation** — compilers and versions, compilation flags, static
  libraries linked, and, when the compiler is an MPI wrapper script, the
  wrapped compiler plus the wrapper's own flags and libraries.

`PTBuild.run` wraps a real ``make`` invocation; `parse_make_output` does
the extraction and is equally happy with captured or synthetic output, so
the whole pipeline is testable offline.
"""

from __future__ import annotations

import os
import platform
import re
import shlex
import subprocess
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..ptdf.writer import PTdfWriter

#: Compiler executables we recognise in make output.
KNOWN_COMPILERS = (
    "mpicc",
    "mpicxx",
    "mpic++",
    "mpif77",
    "mpif90",
    "mpxlc",
    "mpxlf",
    "gcc",
    "g++",
    "cc",
    "c++",
    "icc",
    "icpc",
    "xlc",
    "xlC",
    "xlf",
    "pgcc",
    "clang",
    "clang++",
    "gfortran",
    "f77",
    "f90",
)

#: Wrappers whose underlying compiler we try to discover.
MPI_WRAPPERS = ("mpicc", "mpicxx", "mpic++", "mpif77", "mpif90", "mpxlc", "mpxlf")


@dataclass
class CompilerInvocation:
    """One compiler command line found in the build output."""

    compiler: str
    flags: list[str] = field(default_factory=list)
    sources: list[str] = field(default_factory=list)
    libraries: list[str] = field(default_factory=list)  # -lfoo and *.a
    output: Optional[str] = None
    wrapped_compiler: Optional[str] = None  # for MPI wrapper scripts
    wrapper_flags: list[str] = field(default_factory=list)
    wrapper_libraries: list[str] = field(default_factory=list)

    @property
    def is_mpi_wrapper(self) -> bool:
        return os.path.basename(self.compiler) in MPI_WRAPPERS


@dataclass
class BuildInfo:
    """Everything PTbuild captures for one build."""

    os_name: str
    os_version: str
    os_revision: str
    machine: str
    node: str
    environment: dict[str, str] = field(default_factory=dict)
    invocations: list[CompilerInvocation] = field(default_factory=list)
    makefile: Optional[str] = None
    make_arguments: list[str] = field(default_factory=list)
    timestamp: str = ""
    compiler_versions: dict[str, str] = field(default_factory=dict)

    @property
    def compilers(self) -> list[str]:
        seen: list[str] = []
        for inv in self.invocations:
            base = os.path.basename(inv.compiler)
            if base not in seen:
                seen.append(base)
        return seen

    @property
    def all_flags(self) -> list[str]:
        seen: list[str] = []
        for inv in self.invocations:
            for f in inv.flags:
                if f not in seen:
                    seen.append(f)
        return seen

    @property
    def static_libraries(self) -> list[str]:
        seen: list[str] = []
        for inv in self.invocations:
            for lib in inv.libraries:
                if lib not in seen:
                    seen.append(lib)
        return seen


_SOURCE_RE = re.compile(r".*\.(c|cc|cpp|cxx|f|f77|f90|F|C)$")


def parse_command_line(line: str) -> Optional[CompilerInvocation]:
    """Parse one shell line if it is a compiler invocation."""
    try:
        tokens = shlex.split(line)
    except ValueError:
        return None
    if not tokens:
        return None
    base = os.path.basename(tokens[0])
    if base not in KNOWN_COMPILERS:
        return None
    inv = CompilerInvocation(compiler=tokens[0])
    i = 1
    while i < len(tokens):
        tok = tokens[i]
        if tok == "-o" and i + 1 < len(tokens):
            inv.output = tokens[i + 1]
            i += 2
            continue
        if tok.startswith("-l") or tok.endswith(".a"):
            inv.libraries.append(tok)
        elif tok.startswith("-"):
            inv.flags.append(tok)
        elif _SOURCE_RE.match(tok):
            inv.sources.append(tok)
        i += 1
    return inv


def parse_make_output(text: str) -> list[CompilerInvocation]:
    """Extract all compiler invocations from captured make output."""
    out: list[CompilerInvocation] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("make[", "make:", "#")):
            continue
        inv = parse_command_line(line)
        if inv is not None:
            out.append(inv)
    return out


def unwrap_mpi_wrapper(
    invocation: CompilerInvocation, show_output: Optional[str] = None
) -> CompilerInvocation:
    """Discover the compiler behind an MPI wrapper script.

    Real wrappers answer ``mpicc -show`` (MPICH) / ``mpicc -showme``
    (OpenMPI) with the underlying command line; *show_output* lets tests
    and synthetic builds supply that answer.  When not supplied we try to
    run the wrapper; failures leave the invocation unchanged.
    """
    if not invocation.is_mpi_wrapper:
        return invocation
    text = show_output
    if text is None:
        for flag in ("-show", "-showme"):
            try:
                proc = subprocess.run(
                    [invocation.compiler, flag],
                    capture_output=True,
                    text=True,
                    timeout=10,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if proc.returncode == 0 and proc.stdout.strip():
                text = proc.stdout.strip().splitlines()[0]
                break
    if not text:
        return invocation
    inner = parse_command_line(text)
    if inner is None:
        tokens = text.split()
        if tokens:
            invocation.wrapped_compiler = tokens[0]
        return invocation
    invocation.wrapped_compiler = inner.compiler
    invocation.wrapper_flags = inner.flags
    invocation.wrapper_libraries = inner.libraries
    return invocation


def capture_build_environment(env: Optional[dict[str, str]] = None) -> BuildInfo:
    """Snapshot the local OS/machine/shell for a build record."""
    uname = platform.uname()
    environ = dict(env if env is not None else os.environ)
    return BuildInfo(
        os_name=uname.system,
        os_version=uname.release,
        os_revision=uname.version,
        machine=uname.machine,
        node=uname.node,
        environment=environ,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S"),
    )


class PTBuild:
    """The make-wrapper entry point.

    ``PTBuild().run("make", ["-j4"], cwd=...)`` executes the build,
    captures stdout, and returns a populated :class:`BuildInfo`.
    ``from_output`` performs the same extraction on pre-captured text.
    """

    def __init__(self, env: Optional[dict[str, str]] = None) -> None:
        self.env = env

    def from_output(
        self,
        make_output: str,
        makefile: Optional[str] = None,
        arguments: Iterable[str] = (),
        wrapper_show: Optional[dict[str, str]] = None,
    ) -> BuildInfo:
        info = capture_build_environment(self.env)
        info.makefile = makefile
        info.make_arguments = list(arguments)
        info.invocations = parse_make_output(make_output)
        for inv in info.invocations:
            show = None
            if wrapper_show is not None:
                show = wrapper_show.get(os.path.basename(inv.compiler))
            if inv.is_mpi_wrapper:
                unwrap_mpi_wrapper(inv, show_output=show)
        return info

    def run(
        self,
        make_command: str = "make",
        arguments: Iterable[str] = (),
        cwd: Optional[str] = None,
        makefile: Optional[str] = None,
    ) -> BuildInfo:
        args = [make_command, *arguments]
        if makefile:
            args += ["-f", makefile]
        proc = subprocess.run(args, capture_output=True, text=True, cwd=cwd)
        return self.from_output(
            proc.stdout + "\n" + proc.stderr, makefile=makefile, arguments=arguments
        )


def build_to_ptdf(
    info: BuildInfo,
    writer: PTdfWriter,
    build_name: str,
    interesting_env: Iterable[str] = ("PATH", "LD_LIBRARY_PATH", "CC", "CFLAGS", "HOME"),
) -> str:
    """Emit PTdf for a build: a ``build`` resource plus compiler/OS resources.

    Returns the full name of the build resource.
    """
    res = f"/{build_name}"
    writer.add_resource(res, "build")
    writer.add_resource_attribute(res, "build machine", info.machine)
    writer.add_resource_attribute(res, "build node", info.node)
    if info.makefile:
        writer.add_resource_attribute(res, "makefile", info.makefile)
    if info.make_arguments:
        writer.add_resource_attribute(res, "make arguments", " ".join(info.make_arguments))
    writer.add_resource_attribute(res, "build timestamp", info.timestamp)
    os_res = f"/{info.os_name}-{info.os_version}"
    writer.add_resource(os_res, "operatingSystem")
    writer.add_resource_attribute(os_res, "name", info.os_name)
    writer.add_resource_attribute(os_res, "version", info.os_version)
    writer.add_resource_attribute(os_res, "revision", info.os_revision)
    writer.add_resource_attribute(res, "operating system", os_res, attr_type="resource")
    for key in interesting_env:
        if key in info.environment:
            writer.add_resource_attribute(res, f"env {key}", info.environment[key])
    for compiler in info.compilers:
        comp_res = f"/{compiler}"
        writer.add_resource(comp_res, "compiler")
        if compiler in info.compiler_versions:
            writer.add_resource_attribute(comp_res, "version", info.compiler_versions[compiler])
        writer.add_resource_attribute(res, "compiler", comp_res, attr_type="resource")
    if info.all_flags:
        writer.add_resource_attribute(res, "compilation flags", " ".join(info.all_flags))
    if info.static_libraries:
        writer.add_resource_attribute(
            res, "static libraries", " ".join(info.static_libraries)
        )
    for inv in info.invocations:
        if inv.wrapped_compiler:
            writer.add_resource_attribute(
                res,
                f"wrapped compiler ({os.path.basename(inv.compiler)})",
                inv.wrapped_compiler,
            )
    return res
